(** Append-only JSONL run journal.

    A campaign that runs for hours must survive a crash or a Ctrl-C
    without losing completed work. The drivers ({!Faultcamp},
    {!Suite.run}) write one JSON object per line as tasks complete: a
    header line describing the run's parameters, then one entry per
    finished task (carrying its plan index, so entries may arrive in any
    order under a parallel pool), then a status footer. Resuming loads
    the journal, replays the recorded entries, and executes only the
    remainder — appending the new entries to the same file.

    Crash safety: every line is written and flushed atomically under a
    mutex (entries arrive from worker domains). A process killed
    mid-write leaves at most one torn trailing line, which {!load}
    silently drops — the corresponding task simply re-runs on resume.

    The format is a flat JSON object per line — string, integer, float
    and boolean values only; no nesting. That keeps the parser small
    (the repo deliberately carries no JSON dependency) while every line
    stays valid JSON for outside tooling. *)

type value = String of string | Int of int | Float of float | Bool of bool

type obj = (string * value) list
(** One journal line: field order is preserved on write. *)

(** {1 Codec} *)

val to_line : obj -> string
(** Render as one-line JSON (no trailing newline). Strings are escaped
    per JSON (quote, backslash, control characters). *)

val of_line : string -> obj option
(** Parse one line; [None] on anything malformed (torn tail, blank
    line, nested structure). *)

(** {1 Field access} *)

val find_string : obj -> string -> string option
val find_int : obj -> string -> int option

val find_float : obj -> string -> float option
(** Also accepts an integer field (promoted), so ["0"] round-trips. *)

val find_bool : obj -> string -> bool option

(** {1 Writing} *)

type writer

val create : path:string -> header:obj -> writer
(** Truncate/create [path] and write the header line. *)

val append_to : path:string -> writer
(** Open an existing journal for appending (resume). *)

val append : writer -> obj -> unit
(** Write one line and flush. Thread-safe: entries may come from any
    worker domain. *)

val close : writer -> unit
(** Idempotent. *)

val rewrite : path:string -> obj list -> unit
(** Replace the whole journal at [path] with [objs], one line each,
    atomically (write-to-temp then rename) — the compaction primitive:
    a crash mid-rewrite leaves either the old journal or the new one,
    never a torn hybrid. *)

(** {1 Reading} *)

val load : string -> obj list
(** Every parseable line in file order; unparseable lines (a torn tail
    from a crashed writer) are dropped. Raises [Sys_error] when the
    file cannot be read. *)
