(** Sharded, self-healing campaign coordinator.

    One {!Faultcamp} plan, split into [shards] contiguous slices
    ({!Faultcamp.shard_slice}), each executed by a worker {e process}
    (the CLI re-execed with [--worker]) writing its own journal shard.
    The coordinator watches the workers — per-worker heartbeats arrive
    through the journal tail, a wall-clock watchdog declares silent
    workers dead — and respawns dead workers with exponential backoff,
    each respawn resuming its shard from the journal it left behind.
    A shard that kills two workers in a row without forward progress is
    {e quarantined}: the campaign degrades to a partial report with an
    [INCOMPLETE] section instead of aborting.

    The contract, pinned by the tests at every shard count and under
    every {!Chaos} schedule: {!merge_journals} produces a report
    byte-identical to an uninterrupted single-process run. The merge
    replays the shard journals through {!Faultcamp.run}'s replay table
    ([replay_only]), so journal validation, last-entry-wins semantics
    and report rendering are exactly the machinery the resume path
    already proves out.

    SIGINT reaches the coordinator only (workers run in their own
    session); it fans the signal out and drains every worker to a valid
    journal footer, then refuses to merge — the shard journals stay
    intact for a later resume. *)

type config = {
  case : Suite.case;
      (** Must be one of {!Faultcamp.default_workloads} — workers are
          separate processes and look the workload up by name. *)
  seed : int;
  faults : int;
  max_cycles_factor : int;
  backend : Faultcamp.backend;  (** Workers' mutant evaluator. *)
  deadline_seconds : float;
  slice_cycles : int;
  max_retries : int;
  backoff_seconds : float;
  deadline_profile : (string * float) list;
  shards : int;
  worker_jobs : int;  (** [-j] inside each worker. *)
  dir : string;  (** Shard journals live here (created if missing). *)
  worker_exe : string;  (** The executable to re-exec as workers. *)
  worker_argv_prefix : string list;
      (** Arguments before the campaign flags — e.g. [["campaign"]]
          when [worker_exe] is a multi-command CLI. *)
  watchdog_seconds : float;
      (** A worker whose journal shard shows no activity (heartbeats
          included) for this long is declared dead and SIGKILLed. *)
  respawn_backoff_seconds : float;
      (** Initial respawn delay after a worker death; doubles per
          consecutive death of the same shard. *)
  chaos : int option;
      (** [Some seed] arms the {!Chaos} harness: the seed's schedule
          kills workers mid-slice, stalls them to trip the watchdog and
          corrupts journal tails — and the merged report must still be
          byte-identical to an undisturbed run. *)
}

val default_config :
  case:Suite.case -> dir:string -> worker_exe:string -> config
(** [seed 1], [faults 25], backend [Auto], 1 shard, 1 job per worker,
    10 s watchdog, 0.25 s respawn backoff, no chaos, and the
    {!Faultcamp} resilience defaults. *)

val journal_path : config -> int -> string
(** [journal_path cfg i] — where shard [i]'s journal lives
    ([dir/shard-<i>-of-<n>.jsonl]). *)

val worker_args : config -> baseline:Faultcamp.baseline -> shard:int ->
  chaos_exec:Chaos.disruption option -> string list
(** The argv (after the executable) the coordinator passes to shard
    [shard]'s worker — the CLI campaign flags plus the [--worker]
    protocol flags. Exposed so the CLIs and the tests agree on the
    wire format. *)

(** {1 The worker side} *)

val worker :
  workload:string ->
  seed:int ->
  faults:int ->
  max_cycles_factor:int ->
  jobs:int ->
  backend:Faultcamp.backend ->
  deadline_seconds:float ->
  slice_cycles:int ->
  max_retries:int ->
  backoff_seconds:float ->
  deadline_profile:(string * float) list ->
  shard_index:int ->
  shard_count:int ->
  journal_path:string ->
  baseline:Faultcamp.baseline option ->
  chaos_exec:Chaos.disruption option ->
  unit ->
  int
(** The [--worker] entry point: detach into a fresh session (Ctrl-C on
    the terminal reaches the coordinator only), resume the shard's
    journal if one exists (compacting it first, so a corrupted tail is
    healed before appending), run the shard's slice with a heartbeat
    line appended to the journal every few hundred milliseconds, and
    return the exit code (0 complete, 130 interrupted). Obeys
    [chaos_exec]: [Kill_after k] SIGKILLs the process right after its
    [k]-th journal entry; [Stall] sleeps without heartbeating until the
    coordinator's watchdog kills it. A journal written by a different
    campaign, or a baseline that no longer matches the workload, is
    rejected with a one-line error (exit 1). *)

(** {1 Merging} *)

val merge_journals :
  ?cancel:Budget.token ->
  config ->
  baseline:Faultcamp.baseline ->
  plan:int ->
  string list ->
  Faultcamp.t
(** Merge the shard journals (one path per shard, in shard order) into
    a single campaign: validate each journal's header against the
    coordinator's campaign and its entries against the shard's slice,
    then replay their union through {!Faultcamp.run} [~replay_only].
    With full coverage the result renders byte-identically to an
    uninterrupted single-process run; missing tasks (quarantined or
    unfinished shards, missing journal files) surface as cancelled
    mutants and an [INTERRUPTED] notice — a partial report, never an
    abort. Raises [Failure] with a named diagnostic on a foreign
    journal, a journal claiming the wrong shard identity, a task
    outside its shard's slice — and, {e before touching anything}, when
    [cancel] has fired ("interrupted — shard journals left intact"). *)

(** {1 The coordinator} *)

type shard_status = {
  s_index : int;
  s_slice : int * int;  (** Half-open task range [\[lo, hi)]. *)
  s_attempts : int;  (** Workers spawned for this shard. *)
  s_deaths : int;  (** Abnormal worker endings (watchdog included). *)
  s_quarantined : bool;
  s_last_death : string;  (** Diagnostic of the last death; [""] if none. *)
}

type result = {
  campaign : Faultcamp.t;  (** The merged campaign. *)
  statuses : shard_status list;
  plan : int;  (** Plan length the slices were computed over. *)
  respawns : int;  (** Workers spawned beyond the first per shard. *)
  wall_seconds : float;
}

val run : ?cancel:Budget.token -> config -> result
(** Run the whole sharded campaign: verify the clean design once
    ({!Faultcamp.prepare}), spawn one worker per non-empty slice, watch
    / respawn / quarantine per the config, then merge. Raises
    [Invalid_argument] on a bad config, [Failure] when the clean design
    fails verification or when [cancel] fires (after draining every
    worker to a valid journal footer; the shard journals are kept). *)

val render : ?verbose:bool -> result -> string
(** {!Report.campaign} of the merged campaign, followed by an
    [INCOMPLETE] section naming each quarantined shard, its task range
    and its last death — absent when nothing was quarantined, keeping
    healthy sharded reports byte-identical to single-process ones. *)
