(** End-to-end functional verification of a compiled design.

    The paper's scheme: run the input algorithm in software over the I/O
    data (golden model), simulate the generated architecture over an
    identical copy of the data, then compare memory contents. *)

type memory_result = {
  mem_name : string;
  matches : bool;
  mismatches : (int * int * int) list;
      (** [(address, golden, simulated)], address order, capped at
          {!max_reported_mismatches}. *)
  mismatch_count : int;  (** Uncapped. *)
}

val max_reported_mismatches : int

type t = {
  passed : bool;
  memories : memory_result list;  (** Every declared memory, in order. *)
  golden_vars : (string * Bitvec.t) list;
  golden_stats : Lang.Interp.stats;
  hw_run : Simulate.rtg_run;
  hw_check_failures : int;
      (** [check] operators that fired during simulation (compiled
          [assert] statements). *)
  compiled : Compiler.Compile.t;
  golden_seconds : float;
  golden_oob : int;
      (** Out-of-range memory accesses during the golden software run. *)
  hw_oob : int;
      (** Out-of-range memory accesses during hardware simulation. *)
  oob_failed : bool;
      (** True when OOB accesses occurred and the policy was to fail. *)
}

val run :
  ?options:Compiler.Compile.options ->
  ?clock_period:int ->
  ?max_cycles:int ->
  ?fail_on_oob:bool ->
  ?budget:Budget.t ->
  inits:(string * int list) list ->
  Lang.Ast.program ->
  t
(** Compile the program, set up two identical memory environments from
    [inits] (memories absent from [inits] start zeroed), run golden model
    and hardware simulation, and compare every declared memory.
    [passed] additionally requires that every configuration completed and
    that the hardware fired exactly as many assertion checks as the golden
    model counted violations.

    Out-of-range accesses (the memories' open-decode diagnostic counters)
    are always surfaced in [golden_oob]/[hw_oob]. A nonzero [golden_oob]
    always fails: the software run touched an address outside a declared
    memory, which is a program bug regardless of whether the stray access
    changed the compared memories. [hw_oob] also counts open-decode
    transients (an async read port briefly presenting an intermediate
    address while the datapath settles), so it is a warning by default
    and only fails the verification with [~fail_on_oob:true].

    [budget] is threaded to {!Simulate.run_compiled}: the hardware
    simulation then runs in watchdog slices, so a verification of a
    non-terminating design can be bounded by wall clock or cancelled
    cooperatively ([hw_run.budget_failure] records which). *)

val run_source :
  ?options:Compiler.Compile.options ->
  ?clock_period:int ->
  ?max_cycles:int ->
  ?fail_on_oob:bool ->
  ?budget:Budget.t ->
  inits:(string * int list) list ->
  string ->
  t
(** Parse the program text first. *)

val memory_env :
  Lang.Ast.program -> inits:(string * int list) list ->
  (string -> Operators.Memory.t) * (string * Operators.Memory.t) list
(** Build a fresh memory environment for a program: the lookup function
    and the backing list (declaration order). *)
