(** A small CDCL SAT solver.

    Conflict-driven clause learning with two-watched-literal
    propagation, first-UIP clause learning, activity-ordered decisions
    and geometric restarts. No external dependencies; built for the
    modest CNFs produced by bit-blasting equivalence queries, not for
    competition instances.

    Literals are non-zero integers in DIMACS convention: variable [v]
    is the positive literal [v], its negation [-v]. Variables are
    allocated with {!new_var} and clauses added with {!add_clause};
    {!solve} may be called once per solver. *)

type t

val create : unit -> t

val new_var : t -> int
(** Allocates the next variable (numbered from 1) and returns it. *)

val add_clause : t -> int list -> unit
(** Adds a clause over already-allocated variables. Tautologies are
    dropped and duplicate literals merged. Adding the empty clause
    makes the instance trivially unsatisfiable. *)

type result =
  | Sat of (int -> bool)
      (** A model: maps each allocated variable to its value. *)
  | Unsat
  | Undecided of int
      (** The conflict budget ran out; carries the conflicts spent. *)

val solve : ?max_conflicts:int -> t -> result
(** Decides the instance. [max_conflicts] bounds the total number of
    conflicts before giving up (default: unlimited). *)

val conflicts : t -> int
(** Conflicts encountered so far (for budget reporting). *)
