let hash_mix h v =
  let h = (h lxor v) * 0x100000001b3 in
  h land max_int

let hash_string seed s =
  let h = ref (hash_mix 0x1403_5af3 seed) in
  String.iter (fun c -> h := hash_mix !h (Char.code c)) s;
  !h

let value ~width name k =
  match k with
  | 0 -> Bitvec.zero width
  | 1 -> Bitvec.ones width
  | 2 -> Bitvec.one width
  | 3 -> Bitvec.shift_left (Bitvec.one width) (width - 1)
  | _ -> Bitvec.create ~width (hash_string (k * 0x9e3779b9) name)

let mem ~width name addr k =
  Bitvec.create ~width (hash_mix (hash_string (k lxor 0x5ca1ab1e) name) addr)
