(** Hash-consed, normalizing word-level terms.

    The intermediate form of the equivalence engine: symbolic cones and
    source expressions are rebuilt through the smart constructors here,
    which normalize on the way in — constant folding at the operand
    width, flattening and sorting of associative/commutative operators,
    identity/annihilator elision, [x - y] as [x + (-y)], shift-by-
    constant canonicalized to multiplication, bounded mux pushdown —
    and hash-cons the result, so semantically equal cones frequently
    collapse to the {e same} node and equivalence is decided by a
    pointer comparison before any SAT call.

    Construction counts fresh nodes against an optional budget
    ({!set_node_limit}), the engine's analogue of Tv's cone budget. *)

type op =
  | Add  (** n-ary, AC; subtraction is [Add [a; Neg b]] *)
  | Mul  (** n-ary, AC; [Shl x k] with constant [k] canonicalizes here *)
  | And
  | Or
  | Xor  (** n-ary, AC *)
  | Neg
  | Not
  | Abs
  | Divu
  | Divs
  | Remu
  | Rems
  | Shl
  | Shrl
  | Shra
  | Minu
  | Maxu
  | Mins
  | Maxs
  | Eq
  | Ne
  | Ltu
  | Leu
  | Gtu
  | Geu
  | Lts
  | Les
  | Gts
  | Ges  (** comparisons yield 1-bit terms *)
  | Mux  (** [sel :: inputs], index clamped to the last input *)
  | Zext
  | Sext  (** resize to the node's width *)

type t = private { id : int; width : int; node : node }

and node = private
  | Const of int  (** unsigned payload, truncated to the width *)
  | Var of string
  | Read of string * t  (** memory name, address term *)
  | App of op * t list

exception Node_limit of int
(** Raised by the constructors when the fresh-node budget is exhausted;
    carries the node count. *)

val set_node_limit : int option -> unit
(** Bounds the number of fresh hash-consed nodes created from now on
    ([None] removes the bound and is the initial state). *)

val fresh_nodes : unit -> int
(** Fresh nodes created since {!set_node_limit} was last called. *)

val const : width:int -> int -> t
val var : width:int -> string -> t
val read : width:int -> string -> t -> t
val app : op -> width:int -> t list -> t

val op_of_kind : string -> op option
(** Maps a netlist operator kind string (["add"], ["divu"], ["mux"],
    ["zext"], …) to its term operator; ["pass"] is identity and has no
    operator. [None] for unknown kinds. *)

val equal : t -> t -> bool
(** Pointer/id equality — valid because construction hash-conses. *)

val vars : t -> (string * int) list
(** Free variables with widths, each listed once, sorted by name. *)

val reads : t -> (string * t * int) list
(** Distinct read sites (memory name, address term, read width). *)

type env = {
  lookup : string -> width:int -> Bitvec.t;  (** free variable values *)
  fetch : string -> addr:Bitvec.t -> width:int -> Bitvec.t;
      (** memory contents *)
}

val sample_env : int -> env
(** The deterministic sampling world [k], built on {!Sampler}. *)

val eval : env -> t -> Bitvec.t
(** Concrete evaluation with {!Bitvec} semantics; the operator dispatch
    mirrors the simulators' models, so agreeing terms agree with both
    simulators too. *)

val to_string : t -> string
(** Debug/diagnostic rendering. *)

(** {1 Stage timing} *)

module Stats : sig
  type t = {
    mutable normalize_s : float;
        (** Time spent rebuilding cones through the constructors. *)
    mutable blast_s : float;  (** Time spent bit-blasting to CNF. *)
    mutable solve_s : float;  (** Time spent inside the SAT solver. *)
    mutable sat_calls : int;
    mutable conflicts : int;
  }

  val reset : unit -> unit
  val get : unit -> t
  (** A snapshot (mutating it does not affect the accumulator). *)

  val time : [ `Normalize | `Blast | `Solve ] -> (unit -> 'a) -> 'a
  (** Runs the thunk, accumulating its {!Sys.time} delta. *)

  val count_sat : conflicts:int -> unit
  (** Records one solver call and its conflicts. *)
end
