(* CDCL with two watched literals, first-UIP learning, phase saving and
   geometric restarts. Clauses are int arrays of internal literals:
   variable v (1-based) is lit [2v], its negation [2v+1]. There is no
   clause-database reduction — blasted equivalence queries are small and
   short-lived, so every learnt clause is kept. *)

type t = {
  mutable nvars : int;
  mutable clauses : int array array;  (* growable; learnt appended *)
  mutable nclauses : int;
  mutable watches : int list array;  (* internal lit -> clause indices *)
  mutable value : int array;  (* var -> 0 unassigned / 1 true / -1 false *)
  mutable level : int array;
  mutable reason : int array;  (* var -> clause index or -1 *)
  mutable activity : float array;
  mutable polarity : bool array;  (* saved phase *)
  mutable seen : bool array;  (* analyze scratch *)
  mutable trail : int array;  (* internal lits in assignment order *)
  mutable trail_len : int;
  mutable trail_lim : int list;  (* trail lengths at decision points *)
  mutable qhead : int;
  mutable var_inc : float;
  mutable confl_count : int;
  mutable unsat : bool;  (* an empty clause was added *)
}

let create () =
  {
    nvars = 0;
    clauses = Array.make 64 [||];
    nclauses = 0;
    watches = Array.make 16 [];
    value = Array.make 8 0;
    level = Array.make 8 0;
    reason = Array.make 8 (-1);
    activity = Array.make 8 0.0;
    polarity = Array.make 8 false;
    seen = Array.make 8 false;
    trail = Array.make 8 0;
    trail_len = 0;
    trail_lim = [];
    qhead = 0;
    var_inc = 1.0;
    confl_count = 0;
    unsat = false;
  }

let grow a n fill =
  if Array.length a > n then a
  else begin
    let a' = Array.make (max (2 * Array.length a) (n + 1)) fill in
    Array.blit a 0 a' 0 (Array.length a);
    a'
  end

let new_var s =
  s.nvars <- s.nvars + 1;
  let v = s.nvars in
  s.value <- grow s.value v 0;
  s.level <- grow s.level v 0;
  s.reason <- grow s.reason v (-1);
  s.activity <- grow s.activity v 0.0;
  s.polarity <- grow s.polarity v false;
  s.seen <- grow s.seen v false;
  s.trail <- grow s.trail v 0;
  s.watches <- grow s.watches ((2 * v) + 1) [];
  v

let var l = l lsr 1
let neg l = l lxor 1
let of_dimacs l = if l > 0 then 2 * l else (2 * -l) + 1

(* 0 unassigned, 1 true, -1 false *)
let lit_value s l =
  let v = s.value.(var l) in
  if v = 0 then 0 else if l land 1 = 1 then -v else v

let decision_level s = List.length s.trail_lim

let enqueue s l reason =
  s.value.(var l) <- (if l land 1 = 1 then -1 else 1);
  s.level.(var l) <- decision_level s;
  s.reason.(var l) <- reason;
  s.trail.(s.trail_len) <- l;
  s.trail_len <- s.trail_len + 1

let push_clause s c =
  if s.nclauses >= Array.length s.clauses then begin
    let a = Array.make (2 * Array.length s.clauses) [||] in
    Array.blit s.clauses 0 a 0 s.nclauses;
    s.clauses <- a
  end;
  s.clauses.(s.nclauses) <- c;
  s.nclauses <- s.nclauses + 1;
  s.nclauses - 1

let watch s l ci = s.watches.(l) <- ci :: s.watches.(l)

let add_clause s lits =
  if not s.unsat then begin
    let lits = List.sort_uniq compare (List.map of_dimacs lits) in
    let taut = List.exists (fun l -> List.mem (neg l) lits) lits in
    (* Level-0 simplification: drop false literals, skip satisfied. *)
    let lits = List.filter (fun l -> lit_value s l >= 0) lits in
    let satisfied = List.exists (fun l -> lit_value s l = 1) lits in
    if not (taut || satisfied) then
      match lits with
      | [] -> s.unsat <- true
      | [ l ] -> if lit_value s l = 0 then enqueue s l (-1)
      | l0 :: l1 :: _ ->
          let c = Array.of_list lits in
          let ci = push_clause s c in
          watch s l0 ci;
          watch s l1 ci
  end

(* Returns the index of a falsified clause, or -1. *)
let propagate s =
  let confl = ref (-1) in
  while !confl < 0 && s.qhead < s.trail_len do
    let p = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    let fl = neg p in
    (* Clauses watching [fl], which just became false. *)
    let ws = s.watches.(fl) in
    s.watches.(fl) <- [];
    let rec go = function
      | [] -> ()
      | ci :: rest -> (
          let c = s.clauses.(ci) in
          if c.(0) = fl then begin
            c.(0) <- c.(1);
            c.(1) <- fl
          end;
          if lit_value s c.(0) = 1 then begin
            watch s fl ci;
            go rest
          end
          else
            let n = Array.length c in
            let rec find i =
              if i >= n then -1
              else if lit_value s c.(i) >= 0 then i
              else find (i + 1)
            in
            match find 2 with
            | i when i >= 0 ->
                c.(1) <- c.(i);
                c.(i) <- fl;
                watch s c.(1) ci;
                go rest
            | _ ->
                watch s fl ci;
                if lit_value s c.(0) = -1 then begin
                  confl := ci;
                  s.qhead <- s.trail_len;
                  List.iter (fun ci' -> watch s fl ci') rest
                end
                else begin
                  enqueue s c.(0) ci;
                  go rest
                end)
    in
    go ws
  done;
  !confl

let bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 1 to s.nvars do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end

let cancel_until s lvl =
  let k = decision_level s in
  if k > lvl then begin
    (* trail_lim holds, most recent first, the trail length at each
       decision point; dropping [k - lvl - 1] entries leaves the length
       recorded when level [lvl + 1] was opened at the head. *)
    let rec drop lims n = if n = 0 then lims else drop (List.tl lims) (n - 1) in
    let lims = drop s.trail_lim (k - lvl - 1) in
    let target = List.hd lims in
    for i = s.trail_len - 1 downto target do
      let v = var s.trail.(i) in
      s.polarity.(v) <- s.value.(v) = 1;
      s.value.(v) <- 0;
      s.reason.(v) <- -1
    done;
    s.trail_len <- target;
    s.qhead <- target;
    s.trail_lim <- List.tl lims
  end

(* First-UIP conflict analysis: resolve backwards along the trail until
   one literal of the current decision level remains. Returns the learnt
   clause (asserting literal first) and the backjump level. *)
let analyze s confl =
  let out = ref [] in
  let pathc = ref 0 in
  let p = ref (-1) in
  let idx = ref (s.trail_len - 1) in
  let confl = ref confl in
  let stop = ref false in
  while not !stop do
    let c = s.clauses.(!confl) in
    Array.iter
      (fun q ->
        if q <> !p && (not s.seen.(var q)) && s.level.(var q) > 0 then begin
          s.seen.(var q) <- true;
          bump s (var q);
          if s.level.(var q) >= decision_level s then incr pathc
          else out := q :: !out
        end)
      c;
    while not s.seen.(var s.trail.(!idx)) do
      decr idx
    done;
    p := s.trail.(!idx);
    decr idx;
    s.seen.(var !p) <- false;
    decr pathc;
    if !pathc <= 0 then stop := true else confl := s.reason.(var !p)
  done;
  let learnt = neg !p :: !out in
  List.iter (fun q -> s.seen.(var q) <- false) !out;
  let blevel = List.fold_left (fun m q -> max m (s.level.(var q))) 0 !out in
  (learnt, blevel)

let record_learnt s learnt blevel =
  cancel_until s blevel;
  match learnt with
  | [ l ] -> enqueue s l (-1)
  | l :: _ ->
      (* Watch the asserting literal and one literal of the backjump
         level, which sits right after cancellation. *)
      let rest =
        List.sort
          (fun a b -> compare s.level.(var b) s.level.(var a))
          (List.tl learnt)
      in
      let c = Array.of_list (l :: rest) in
      let ci = push_clause s c in
      watch s c.(0) ci;
      watch s c.(1) ci;
      enqueue s l ci
  | [] -> s.unsat <- true

let pick_branch s =
  let best = ref 0 and best_act = ref neg_infinity in
  for v = 1 to s.nvars do
    if s.value.(v) = 0 && s.activity.(v) > !best_act then begin
      best := v;
      best_act := s.activity.(v)
    end
  done;
  !best

type result = Sat of (int -> bool) | Unsat | Undecided of int

let conflicts s = s.confl_count

let solve ?(max_conflicts = max_int) s =
  if s.unsat then Unsat
  else begin
    let result = ref None in
    let restart_limit = ref 100 in
    let since_restart = ref 0 in
    while !result = None do
      let confl = propagate s in
      if confl >= 0 then begin
        s.confl_count <- s.confl_count + 1;
        incr since_restart;
        if decision_level s = 0 then result := Some Unsat
        else if s.confl_count >= max_conflicts then
          result := Some (Undecided s.confl_count)
        else begin
          let learnt, blevel = analyze s confl in
          record_learnt s learnt blevel;
          s.var_inc <- s.var_inc /. 0.95
        end
      end
      else if !since_restart >= !restart_limit then begin
        since_restart := 0;
        restart_limit := !restart_limit * 3 / 2;
        cancel_until s 0
      end
      else
        match pick_branch s with
        | 0 ->
            let value = Array.copy s.value in
            result := Some (Sat (fun v -> value.(v) = 1))
        | v ->
            s.trail_lim <- s.trail_len :: s.trail_lim;
            enqueue s (if s.polarity.(v) then 2 * v else (2 * v) + 1) (-1)
    done;
    match !result with Some r -> r | None -> assert false
  end
