(** The staged equivalence decision procedure.

    [decide a b] runs the pipeline the certificates are built on:

    + {b structural} — after hash-consed normalization, semantically
      equal cones frequently share a node; id equality proves them;
    + {b sampling} — the shared deterministic {!Sampler} worlds hunt a
      cheap counterexample before any solver work;
    + {b solver} — the disequality [a <> b] is bit-blasted (Tseitin
      gates, Ackermann congruence constraints for memory reads) and
      handed to the CDCL core; UNSAT proves equivalence, a model is a
      counterexample.

    Every refutation carries a concrete witness that has been replayed
    through both terms with the concrete evaluator — a solver model
    that fails replay is reported as {!Unknown}, never as a refutation,
    so a {!Refuted} verdict is trustworthy even against blaster
    defects. *)

type witness = {
  assignment : (string * Bitvec.t) list;
      (** Free-variable valuation, sorted by name. *)
  cells : ((string * int) * Bitvec.t) list;
      (** Memory contents at the addresses the terms read. *)
  left : Bitvec.t;  (** Value of the first term under the witness. *)
  right : Bitvec.t;  (** Value of the second term — differs. *)
  via : [ `Sample of int | `Solver ];
}

val witness_to_string : witness -> string
(** ["x=8'd3, m[2]=8'd5 -> 8'd1 vs 8'd0 (solver model)"]-style text. *)

type reason = {
  cause : string;  (** Which budget or defense gave up. *)
  conflicts : int;  (** Solver conflicts spent. *)
}

type outcome =
  | Proved of [ `Structural | `Solver ]
  | Refuted of witness
  | Unknown of reason

val decide : ?samples:int -> ?max_conflicts:int -> Term.t -> Term.t -> outcome
(** Decides [a = b] for terms of equal width (raises
    {!Bitvec.Width_error} on a width mismatch — two cones feeding the
    same architectural element can only differ in width through a
    malformed document). Defaults: 17 samples, 100_000 conflicts. *)

val sample_only : samples:int -> Term.t -> Term.t -> witness option
(** Just stages 1–2 (structural, sampling): [None] means every sampled
    world agreed — the legacy evidence-only verdict. *)
