(** Deterministic FNV-seeded sampling.

    Free values (registers, source variables, deleted temporaries) and
    memory contents are drawn from a deterministic hash of their name
    and the sample index, so both sides of an equivalence comparison
    observe the same world. The first samples are corner values shared
    by every name — ties like [x - x] need the hash samples to break
    them, and overflow corners need the all-ones/sign-bit worlds.

    This is the single sampler of the infrastructure: {!Tv} uses it as
    the pre-filter of its staged pipeline and {!Decide} uses it to hunt
    counterexamples before bit-blasting, so a sample index means the
    same concrete world everywhere. *)

val hash_mix : int -> int -> int
(** One FNV-1a style mixing step, kept non-negative. *)

val hash_string : int -> string -> int
(** [hash_string seed s] folds [s] into the seeded hash. *)

val value : width:int -> string -> int -> Bitvec.t
(** [value ~width name k] is the sample of free value [name] in world
    [k]. Worlds 0–3 are the corners: zero, all-ones, one, sign bit. *)

val mem : width:int -> string -> int -> int -> Bitvec.t
(** [mem ~width name addr k] is the content of memory [name] at
    concrete address [addr] in world [k]. *)
