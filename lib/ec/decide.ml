module T = Term

type witness = {
  assignment : (string * Bitvec.t) list;
  cells : ((string * int) * Bitvec.t) list;
  left : Bitvec.t;
  right : Bitvec.t;
  via : [ `Sample of int | `Solver ];
}

type reason = { cause : string; conflicts : int }

type outcome =
  | Proved of [ `Structural | `Solver ]
  | Refuted of witness
  | Unknown of reason

let witness_to_string w =
  let cap = 16 in
  let parts =
    List.map
      (fun (n, v) -> Printf.sprintf "%s=%s" n (Bitvec.to_string v))
      w.assignment
    @ List.map
        (fun ((m, a), v) ->
          Printf.sprintf "%s[%d]=%s" m a (Bitvec.to_string v))
        w.cells
  in
  let parts =
    if List.length parts <= cap then parts
    else List.filteri (fun i _ -> i < cap) parts @ [ "..." ]
  in
  Printf.sprintf "%s -> %s vs %s (%s)"
    (if parts = [] then "any input" else String.concat ", " parts)
    (Bitvec.to_string w.left) (Bitvec.to_string w.right)
    (match w.via with
    | `Sample k -> Printf.sprintf "sample %d" k
    | `Solver -> "solver model")

(* A witness is only ever built from an environment both terms were
   just replayed through, so the recorded values are the replayed
   values — the self-check is part of construction. *)
let mk_witness ~via env a b va vb =
  let names = List.sort_uniq compare (T.vars a @ T.vars b) in
  let assignment =
    List.map (fun (n, w) -> (n, env.T.lookup n ~width:w)) names
  in
  let cells = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (m, addr, w) ->
      let av = Bitvec.to_int (T.eval env addr) in
      if not (Hashtbl.mem cells (m, av)) then begin
        Hashtbl.replace cells (m, av)
          (env.T.fetch m ~addr:(T.eval env addr) ~width:w);
        order := (m, av) :: !order
      end)
    (T.reads a @ T.reads b);
  let cells =
    List.rev_map (fun k -> (k, Hashtbl.find cells k)) !order
  in
  { assignment; cells; left = va; right = vb; via }

let sample_hunt ~samples a b =
  let rec go k =
    if k >= samples then None
    else
      let env = T.sample_env k in
      let va = T.eval env a and vb = T.eval env b in
      if Bitvec.equal va vb then go (k + 1)
      else Some (mk_witness ~via:(`Sample k) env a b va vb)
  in
  go 0

let sample_only ~samples a b =
  if T.equal a b then None else sample_hunt ~samples a b

(* ------------------------------------------------------------------ *)
(* Bit blasting (Tseitin). Words are literal arrays, LSB first.         *)

type bctx = {
  sat : Sat.t;
  tt : int;  (* the always-true literal *)
  bits : (int, int array) Hashtbl.t;  (* term id -> word *)
  vbits : (string * int, int array) Hashtbl.t;
  sites : (string, (int array * int array) list ref) Hashtbl.t;
      (* memory -> (address word, value word) per read site *)
}

let nv c = Sat.new_var c.sat
let cl c lits = Sat.add_clause c.sat lits

let b_and c a b =
  if a = -c.tt || b = -c.tt then -c.tt
  else if a = c.tt then b
  else if b = c.tt then a
  else if a = b then a
  else if a = -b then -c.tt
  else begin
    let o = nv c in
    cl c [ -o; a ];
    cl c [ -o; b ];
    cl c [ -a; -b; o ];
    o
  end

let b_or c a b = -b_and c (-a) (-b)

let b_xor c a b =
  if a = c.tt then -b
  else if a = -c.tt then b
  else if b = c.tt then -a
  else if b = -c.tt then a
  else if a = b then -c.tt
  else if a = -b then c.tt
  else begin
    let o = nv c in
    cl c [ -a; -b; -o ];
    cl c [ a; b; -o ];
    cl c [ a; -b; o ];
    cl c [ -a; b; o ];
    o
  end

let b_ite c s a b =
  if s = c.tt then a
  else if s = -c.tt then b
  else if a = b then a
  else b_or c (b_and c s a) (b_and c (-s) b)

let w_const c ~width v =
  Array.init width (fun i -> if (v lsr i) land 1 = 1 then c.tt else -c.tt)

let w_ite c s a b = Array.map2 (b_ite c s) a b
let w_not a = Array.map (fun l -> -l) a

let full_add c a b cin =
  let s = b_xor c (b_xor c a b) cin in
  let co = b_or c (b_and c a b) (b_or c (b_and c a cin) (b_and c b cin)) in
  (s, co)

let w_add_c c a b cin =
  let w = Array.length a in
  let out = Array.make w 0 in
  let carry = ref cin in
  for i = 0 to w - 1 do
    let s, co = full_add c a.(i) b.(i) !carry in
    out.(i) <- s;
    carry := co
  done;
  (out, !carry)

let w_add c a b = fst (w_add_c c a b (-c.tt))
let w_neg c a = fst (w_add_c c (w_not a) (w_const c ~width:(Array.length a) 0) c.tt)

(* Carry-out of [a + ~b + 1], i.e. unsigned a >= b. *)
let w_uge c a b = snd (w_add_c c a (w_not b) c.tt)
let w_ult c a b = -w_uge c a b
let w_ule c a b = w_uge c b a

let w_eq c a b =
  let acc = ref c.tt in
  Array.iteri (fun i x -> acc := b_and c !acc (-b_xor c x b.(i))) a;
  !acc

let flip_msb a =
  let a = Array.copy a in
  let m = Array.length a - 1 in
  a.(m) <- -a.(m);
  a

let w_slt c a b = w_ult c (flip_msb a) (flip_msb b)
let w_sle c a b = w_ule c (flip_msb a) (flip_msb b)

let w_mul c a b =
  let w = Array.length a in
  let acc = ref (w_const c ~width:w 0) in
  for i = 0 to w - 1 do
    let partial =
      Array.init w (fun j ->
          if j < i then -c.tt else b_and c a.(j - i) b.(i))
    in
    acc := w_add c !acc partial
  done;
  !acc

(* Barrel shifter with >=width saturation, matching Bitvec's
   fully-shifted convention. *)
let w_shift c dir a amt =
  let w = Array.length a in
  let res = ref (Array.copy a) in
  let nstages = ref 0 in
  while 1 lsl !nstages < w do
    let j = !nstages in
    let k = 1 lsl j in
    let cur = !res in
    let shifted =
      match dir with
      | `Shl -> Array.init w (fun i -> if i < k then -c.tt else cur.(i - k))
      | `Shrl ->
          Array.init w (fun i -> if i + k < w then cur.(i + k) else -c.tt)
      | `Shra ->
          Array.init w (fun i ->
              if i + k < w then cur.(i + k) else cur.(w - 1))
    in
    let bit = if j < Array.length amt then amt.(j) else -c.tt in
    res := w_ite c bit shifted cur;
    incr nstages
  done;
  (* amount >= width: any bit beyond the stages, or the staged bits
     numerically reaching the width (non-power-of-two widths). *)
  let high = ref (-c.tt) in
  for j = !nstages to Array.length amt - 1 do
    high := b_or c !high amt.(j)
  done;
  let ge =
    if 1 lsl !nstages = w && !nstages > 0 then !high
    else if !nstages = 0 then
      (* width 1: any nonzero amount saturates *)
      Array.fold_left (b_or c) (-c.tt) amt
    else begin
      let low = Array.sub amt 0 (min !nstages (Array.length amt)) in
      let low =
        if Array.length low = !nstages then low
        else
          Array.init !nstages (fun i ->
              if i < Array.length low then low.(i) else -c.tt)
      in
      b_or c !high (w_uge c low (w_const c ~width:!nstages w))
    end
  in
  let full =
    match dir with
    | `Shl | `Shrl -> Array.make w (-c.tt)
    | `Shra -> Array.make w a.(w - 1)
  in
  w_ite c ge full !res

(* Restoring division at width+1; for a zero divisor the compare is
   always true and the subtraction subtracts nothing, so the circuit
   naturally yields quotient all-ones and remainder = dividend — the
   documented Bitvec convention. *)
let w_udivmod c a d =
  let w = Array.length a in
  let d1 = Array.append d [| -c.tt |] in
  let r = ref (w_const c ~width:(w + 1) 0) in
  let q = Array.make w 0 in
  for i = w - 1 downto 0 do
    let cur = !r in
    let r' = Array.init (w + 1) (fun j -> if j = 0 then a.(i) else cur.(j - 1)) in
    let ge = w_uge c r' d1 in
    q.(i) <- ge;
    let diff = fst (w_add_c c r' (w_not d1) c.tt) in
    r := w_ite c ge diff r'
  done;
  (q, Array.sub !r 0 w)

let w_is_zero c a = -Array.fold_left (b_or c) (-c.tt) a

let w_sdivmod c a d =
  let w = Array.length a in
  let xs = a.(w - 1) and ds = d.(w - 1) in
  let ax = w_ite c xs (w_neg c a) a in
  let ad = w_ite c ds (w_neg c d) d in
  let uq, ur = w_udivmod c ax ad in
  let q0 = w_ite c (b_xor c xs ds) (w_neg c uq) uq in
  let r0 = w_ite c xs (w_neg c ur) ur in
  let dz = w_is_zero c d in
  (* x / 0 = all-ones, x mod 0 = x; min_int / -1 wraps through the
     unsigned path by itself. *)
  (w_ite c dz (Array.make w c.tt) q0, w_ite c dz a r0)

let rec blast c (t : T.t) =
  match Hashtbl.find_opt c.bits t.T.id with
  | Some b -> b
  | None ->
      let b = blast_fresh c t in
      Hashtbl.replace c.bits t.T.id b;
      b

and blast_fresh c (t : T.t) =
  let w = t.T.width in
  match t.T.node with
  | T.Const v -> w_const c ~width:w v
  | T.Var n -> (
      match Hashtbl.find_opt c.vbits (n, w) with
      | Some b -> b
      | None ->
          let b = Array.init w (fun _ -> nv c) in
          Hashtbl.replace c.vbits (n, w) b;
          b)
  | T.Read (m, addr) ->
      let ab = blast c addr in
      let vb = Array.init w (fun _ -> nv c) in
      let prev =
        match Hashtbl.find_opt c.sites m with
        | Some r -> r
        | None ->
            let r = ref [] in
            Hashtbl.replace c.sites m r;
            r
      in
      (* Ackermann congruence: same address => same value, so models
         are realizable as a concrete memory and UNSAT quantifies over
         all memories. *)
      List.iter
        (fun (ab2, vb2) ->
          if Array.length vb2 = w then begin
            let wa = max (Array.length ab) (Array.length ab2) in
            let ext x =
              Array.init wa (fun i ->
                  if i < Array.length x then x.(i) else -c.tt)
            in
            let ae = w_eq c (ext ab) (ext ab2) in
            Array.iteri
              (fun i v1 ->
                cl c [ -ae; -v1; vb2.(i) ];
                cl c [ -ae; v1; -vb2.(i) ])
              vb
          end)
        !prev;
      prev := (ab, vb) :: !prev;
      vb
  | T.App (op, args) -> (
      let bs = List.map (blast c) args in
      match (op, bs) with
      | T.Add, x :: xs -> List.fold_left (w_add c) x xs
      | T.Mul, x :: xs -> List.fold_left (w_mul c) x xs
      | T.And, x :: xs ->
          List.fold_left (fun a b -> Array.map2 (b_and c) a b) x xs
      | T.Or, x :: xs ->
          List.fold_left (fun a b -> Array.map2 (b_or c) a b) x xs
      | T.Xor, x :: xs ->
          List.fold_left (fun a b -> Array.map2 (b_xor c) a b) x xs
      | T.Neg, [ a ] -> w_neg c a
      | T.Not, [ a ] -> w_not a
      | T.Abs, [ a ] -> w_ite c a.(w - 1) (w_neg c a) a
      | T.Divu, [ a; b ] -> fst (w_udivmod c a b)
      | T.Remu, [ a; b ] -> snd (w_udivmod c a b)
      | T.Divs, [ a; b ] -> fst (w_sdivmod c a b)
      | T.Rems, [ a; b ] -> snd (w_sdivmod c a b)
      | T.Shl, [ a; b ] -> w_shift c `Shl a b
      | T.Shrl, [ a; b ] -> w_shift c `Shrl a b
      | T.Shra, [ a; b ] -> w_shift c `Shra a b
      | T.Minu, [ a; b ] -> w_ite c (w_ule c a b) a b
      | T.Maxu, [ a; b ] -> w_ite c (w_uge c a b) a b
      | T.Mins, [ a; b ] -> w_ite c (w_sle c a b) a b
      | T.Maxs, [ a; b ] -> w_ite c (w_sle c a b) b a
      | T.Eq, [ a; b ] -> [| w_eq c a b |]
      | T.Ne, [ a; b ] -> [| -w_eq c a b |]
      | T.Ltu, [ a; b ] -> [| w_ult c a b |]
      | T.Leu, [ a; b ] -> [| w_ule c a b |]
      | T.Gtu, [ a; b ] -> [| w_ult c b a |]
      | T.Geu, [ a; b ] -> [| w_uge c a b |]
      | T.Lts, [ a; b ] -> [| w_slt c a b |]
      | T.Les, [ a; b ] -> [| w_sle c a b |]
      | T.Gts, [ a; b ] -> [| w_slt c b a |]
      | T.Ges, [ a; b ] -> [| w_sle c b a |]
      | T.Mux, sel :: ins ->
          let n = List.length ins in
          let ins = Array.of_list ins in
          let sw = Array.length sel in
          let acc = ref ins.(n - 1) in
          for i = n - 2 downto 0 do
            (* Inputs beyond the select's range are unreachable (the
               clamp picks the last input first). *)
            if sw >= 62 || i < 1 lsl sw then
              acc :=
                w_ite c (w_eq c sel (w_const c ~width:sw i)) ins.(i) !acc
          done;
          !acc
      | T.Zext, [ a ] ->
          Array.init w (fun i ->
              if i < Array.length a then a.(i) else -c.tt)
      | T.Sext, [ a ] ->
          let la = Array.length a in
          Array.init w (fun i -> if i < la then a.(i) else a.(la - 1))
      | _ -> invalid_arg "Ec.Decide: operator arity")

(* ------------------------------------------------------------------ *)

let solver_stage ~max_conflicts a b =
  let c =
    T.Stats.time `Blast (fun () ->
        let sat = Sat.create () in
        let tt = Sat.new_var sat in
        Sat.add_clause sat [ tt ];
        let c =
          {
            sat;
            tt;
            bits = Hashtbl.create 256;
            vbits = Hashtbl.create 32;
            sites = Hashtbl.create 8;
          }
        in
        let ba = blast c a and bb = blast c b in
        (* Assert the disequality: some bit position differs. *)
        Sat.add_clause sat
          (Array.to_list (Array.mapi (fun i x -> b_xor c x bb.(i)) ba));
        c)
  in
  let res = T.Stats.time `Solve (fun () -> Sat.solve ~max_conflicts c.sat) in
  T.Stats.count_sat ~conflicts:(Sat.conflicts c.sat);
  match res with
  | Sat.Unsat -> Proved `Solver
  | Sat.Undecided n ->
      Unknown { cause = Printf.sprintf "max_conflicts=%d" max_conflicts;
                conflicts = n }
  | Sat.Sat model ->
      let bitval l =
        if l = c.tt then true
        else if l = -c.tt then false
        else if l > 0 then model l
        else not (model (-l))
      in
      let word bits =
        let v = ref 0 in
        Array.iteri (fun i l -> if bitval l then v := !v lor (1 lsl i)) bits;
        !v
      in
      let lookup name ~width =
        match Hashtbl.find_opt c.vbits (name, width) with
        | Some bits -> Bitvec.create ~width (word bits)
        | None -> Bitvec.zero width
      in
      let cells = Hashtbl.create 16 in
      Hashtbl.iter
        (fun m r ->
          List.iter
            (fun (ab, vb) ->
              let key = (m, word ab) in
              if not (Hashtbl.mem cells key) then
                Hashtbl.replace cells key
                  (Bitvec.create ~width:(Array.length vb) (word vb)))
            !r)
        c.sites;
      let fetch m ~addr ~width =
        match Hashtbl.find_opt cells (m, Bitvec.to_int addr) with
        | Some v -> Bitvec.resize v width
        | None -> Bitvec.zero width
      in
      let env = { T.lookup; fetch } in
      let va = T.eval env a and vb = T.eval env b in
      if Bitvec.equal va vb then
        (* The model does not replay to a disagreement — never report a
           refutation the concrete semantics cannot reproduce. *)
        Unknown
          { cause = "solver model failed concrete replay";
            conflicts = Sat.conflicts c.sat }
      else Refuted (mk_witness ~via:`Solver env a b va vb)

let decide ?(samples = 17) ?(max_conflicts = 100_000) a b =
  if T.(a.width <> b.width) then
    raise
      (Bitvec.Width_error
         (Printf.sprintf "Ec.decide: operand widths differ (%d vs %d)"
            T.(a.width) T.(b.width)))
  else if T.equal a b then Proved `Structural
  else
    match sample_hunt ~samples a b with
    | Some w -> Refuted w
    | None -> solver_stage ~max_conflicts a b
