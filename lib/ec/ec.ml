(** The equivalence-checking engine: {!Sampler} (deterministic
    concrete worlds), {!Term} (hash-consed normalizing terms), {!Sat}
    (the CDCL core) and, included at the top level, the staged
    {!Decide.decide} pipeline. *)

module Sampler = Sampler
module Sat = Sat
module Term = Term
include Decide
