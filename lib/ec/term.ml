type op =
  | Add
  | Mul
  | And
  | Or
  | Xor
  | Neg
  | Not
  | Abs
  | Divu
  | Divs
  | Remu
  | Rems
  | Shl
  | Shrl
  | Shra
  | Minu
  | Maxu
  | Mins
  | Maxs
  | Eq
  | Ne
  | Ltu
  | Leu
  | Gtu
  | Geu
  | Lts
  | Les
  | Gts
  | Ges
  | Mux
  | Zext
  | Sext

type t = { id : int; width : int; node : node }

and node =
  | Const of int
  | Var of string
  | Read of string * t
  | App of op * t list

exception Node_limit of int

(* ------------------------------------------------------------------ *)
(* Stage timing                                                         *)

module Stats = struct
  type t = {
    mutable normalize_s : float;
    mutable blast_s : float;
    mutable solve_s : float;
    mutable sat_calls : int;
    mutable conflicts : int;
  }

  let acc =
    { normalize_s = 0.0; blast_s = 0.0; solve_s = 0.0; sat_calls = 0;
      conflicts = 0 }

  let reset () =
    acc.normalize_s <- 0.0;
    acc.blast_s <- 0.0;
    acc.solve_s <- 0.0;
    acc.sat_calls <- 0;
    acc.conflicts <- 0

  let get () =
    {
      normalize_s = acc.normalize_s;
      blast_s = acc.blast_s;
      solve_s = acc.solve_s;
      sat_calls = acc.sat_calls;
      conflicts = acc.conflicts;
    }

  let count_sat ~conflicts =
    acc.sat_calls <- acc.sat_calls + 1;
    acc.conflicts <- acc.conflicts + conflicts

  let time stage f =
    let t0 = Sys.time () in
    Fun.protect
      ~finally:(fun () ->
        let dt = Sys.time () -. t0 in
        match stage with
        | `Normalize -> acc.normalize_s <- acc.normalize_s +. dt
        | `Blast -> acc.blast_s <- acc.blast_s +. dt
        | `Solve -> acc.solve_s <- acc.solve_s +. dt)
      f
end

(* ------------------------------------------------------------------ *)
(* Hash-consing                                                         *)

type key =
  | Kconst of int * int
  | Kvar of int * string
  | Kread of int * string * int
  | Kapp of int * op * int list

let table : (key, t) Hashtbl.t = Hashtbl.create 4096
let next_id = ref 0
let fresh = ref 0
let limit = ref None

let set_node_limit l =
  (* Clearing the memo only loses sharing with future terms, never
     soundness: ids stay globally unique, so id equality still implies
     structural equality. Clearing bounds memory across long campaigns. *)
  Hashtbl.reset table;
  fresh := 0;
  limit := l

let fresh_nodes () = !fresh

let key_of width node =
  match node with
  | Const v -> Kconst (width, v)
  | Var n -> Kvar (width, n)
  | Read (m, a) -> Kread (width, m, a.id)
  | App (op, args) -> Kapp (width, op, List.map (fun a -> a.id) args)

let mk width node =
  let k = key_of width node in
  match Hashtbl.find_opt table k with
  | Some t -> t
  | None ->
      incr fresh;
      (match !limit with
      | Some l when !fresh > l -> raise (Node_limit !fresh)
      | _ -> ());
      incr next_id;
      let t = { id = !next_id; width; node } in
      Hashtbl.replace table k t;
      t

let equal a b = a.id = b.id

(* ------------------------------------------------------------------ *)
(* Concrete semantics (mirrors the simulators' operator models)         *)

let bv_min_u a b = if Bitvec.to_int a <= Bitvec.to_int b then a else b
let bv_max_u a b = if Bitvec.to_int a >= Bitvec.to_int b then a else b
let bv_min_s a b = if Bitvec.to_signed a <= Bitvec.to_signed b then a else b
let bv_max_s a b = if Bitvec.to_signed a >= Bitvec.to_signed b then a else b

let apply_op op ~width args =
  match (op, args) with
  | Add, x :: xs -> List.fold_left Bitvec.add x xs
  | Mul, x :: xs -> List.fold_left Bitvec.mul x xs
  | And, x :: xs -> List.fold_left Bitvec.logand x xs
  | Or, x :: xs -> List.fold_left Bitvec.logor x xs
  | Xor, x :: xs -> List.fold_left Bitvec.logxor x xs
  | Neg, [ a ] -> Bitvec.neg a
  | Not, [ a ] -> Bitvec.lognot a
  | Abs, [ a ] -> if Bitvec.msb a then Bitvec.neg a else a
  | Divu, [ a; b ] -> Bitvec.udiv a b
  | Divs, [ a; b ] -> Bitvec.sdiv a b
  | Remu, [ a; b ] -> Bitvec.urem a b
  | Rems, [ a; b ] -> Bitvec.srem a b
  | Shl, [ a; b ] -> Bitvec.shift_left a (Bitvec.to_int b)
  | Shrl, [ a; b ] -> Bitvec.shift_right_logical a (Bitvec.to_int b)
  | Shra, [ a; b ] -> Bitvec.shift_right_arith a (Bitvec.to_int b)
  | Minu, [ a; b ] -> bv_min_u a b
  | Maxu, [ a; b ] -> bv_max_u a b
  | Mins, [ a; b ] -> bv_min_s a b
  | Maxs, [ a; b ] -> bv_max_s a b
  | Eq, [ a; b ] -> Bitvec.eq a b
  | Ne, [ a; b ] -> Bitvec.ne a b
  | Ltu, [ a; b ] -> Bitvec.ult a b
  | Leu, [ a; b ] -> Bitvec.ule a b
  | Gtu, [ a; b ] -> Bitvec.ugt a b
  | Geu, [ a; b ] -> Bitvec.uge a b
  | Lts, [ a; b ] -> Bitvec.slt a b
  | Les, [ a; b ] -> Bitvec.sle a b
  | Gts, [ a; b ] -> Bitvec.sgt a b
  | Ges, [ a; b ] -> Bitvec.sge a b
  | Mux, sel :: ins ->
      let s = Bitvec.to_int sel in
      List.nth ins (min s (List.length ins - 1))
  | Zext, [ a ] -> Bitvec.resize a width
  | Sext, [ a ] -> Bitvec.sresize a width
  | _ -> invalid_arg "Ec.Term: operator arity"

(* ------------------------------------------------------------------ *)
(* Smart constructors                                                   *)

let const ~width v =
  mk width (Const (Bitvec.to_int (Bitvec.create ~width v)))

let var ~width name = mk width (Var name)
let read ~width mem addr = mk width (Read (mem, addr))

let is_const t = match t.node with Const _ -> true | _ -> false
let const_val t = match t.node with Const v -> Some v | _ -> None
let bv t v = Bitvec.create ~width:t.width v

let sort_args = List.sort (fun a b -> compare a.id b.id)

(* One AC operator application: flatten nested same-op terms, fold the
   constants into one, elide identities, apply annihilators, cancel
   complementary pairs, sort by id. *)
let rec ac_app op width args =
  let args =
    List.concat_map
      (fun a ->
        match a.node with
        | App (o, xs) when o = op && a.width = width -> xs
        | _ -> [ a ])
      args
  in
  let consts, rest = List.partition is_const args in
  let neutral =
    match op with
    | Add | Or | Xor -> 0
    | Mul -> 1
    | And -> Bitvec.to_int (Bitvec.ones width)
    | _ -> assert false
  in
  let cval =
    List.fold_left
      (fun acc c ->
        match c.node with
        | Const v ->
            Bitvec.to_int
              (apply_op op ~width
                 [ Bitvec.create ~width acc; Bitvec.create ~width v ])
        | _ -> acc)
      neutral consts
  in
  let annihilated =
    match op with
    | Mul -> cval = 0
    | And -> cval = 0
    | Or -> cval = Bitvec.to_int (Bitvec.ones width)
    | _ -> false
  in
  if annihilated then const ~width cval
  else
    let rest =
      match op with
      | And | Or ->
          (* Idempotent: dedupe; complementary pair -> annihilator. *)
          let rest = List.sort_uniq (fun a b -> compare a.id b.id) rest in
          if
            List.exists
              (fun a ->
                match a.node with
                | App (Not, [ b ]) -> List.exists (equal b) rest
                | _ -> false)
              rest
          then
            [
              (if op = And then const ~width 0
               else const ~width (Bitvec.to_int (Bitvec.ones width)));
            ]
          else rest
      | Xor ->
          (* Self-inverse: equal pairs cancel. *)
          let sorted = sort_args rest in
          let rec cancel = function
            | a :: b :: tl when a.id = b.id -> cancel tl
            | a :: tl -> a :: cancel tl
            | [] -> []
          in
          cancel sorted
      | Add ->
          (* x + (-x) cancels. *)
          let rec cancel acc = function
            | [] -> List.rev acc
            | a :: tl -> (
                let negated b =
                  match b.node with
                  | App (Neg, [ c ]) -> equal c a
                  | _ -> (
                      match a.node with
                      | App (Neg, [ c ]) -> equal c b
                      | _ -> false)
                in
                match List.partition negated tl with
                | _b :: rest_b, keep -> cancel acc (keep @ rest_b)
                | [], _ -> cancel (a :: acc) tl)
          in
          cancel [] rest
      | _ -> rest
    in
    match (rest, cval = neutral) with
    | [], true -> const ~width neutral
    | [], false -> const ~width cval
    | [ x ], true -> x
    | xs, true -> mk width (App (op, sort_args xs))
    | xs, false -> mk width (App (op, sort_args (const ~width cval :: xs)))

and app op ~width args =
  match (op, args) with
  | (Add | Mul | And | Or | Xor), _ -> ac_app op width args
  | _ -> (
      (* Full constant folding first. *)
      match
        if List.for_all is_const args then
          Some
            (List.map
               (fun a ->
                 match a.node with Const v -> bv a v | _ -> assert false)
               args)
        else None
      with
      | Some cargs ->
          const ~width (Bitvec.to_int (apply_op op ~width cargs))
      | None -> app_nonconst op ~width args)

and app_nonconst op ~width args =
  match (op, args) with
  | Neg, [ { node = App (Neg, [ b ]); _ } ] -> b
  | Not, [ { node = App (Not, [ b ]); _ } ] -> b
  | (Divu | Divs), [ a; { node = Const 1; _ } ] -> a
  | (Remu | Rems), [ _; { node = Const 1; _ } ] -> const ~width 0
  | Shl, [ a; b ] -> (
      match const_val b with
      | Some k when k >= width -> const ~width 0
      | Some k -> ac_app Mul width [ a; const ~width (1 lsl k) ]
      | None -> pushdown op width args)
  | (Shrl | Shra), [ a; b ] -> (
      match const_val b with
      | Some 0 -> a
      | Some k when k >= width && op = Shrl -> const ~width 0
      | _ -> pushdown op width args)
  | Eq, [ a; b ] when equal a b -> const ~width:1 1
  | Ne, [ a; b ] when equal a b -> const ~width:1 0
  | (Ltu | Lts | Gtu | Gts), [ a; b ] when equal a b -> const ~width:1 0
  | (Leu | Les | Geu | Ges), [ a; b ] when equal a b -> const ~width:1 1
  | (Minu | Maxu | Mins | Maxs), [ a; b ] when equal a b -> a
  | Mux, sel :: ins -> (
      if ins = [] then invalid_arg "Ec.Term: mux without inputs"
      else
        match const_val sel with
        | Some v -> List.nth ins (min v (List.length ins - 1))
        | None ->
            let first = List.hd ins in
            if List.for_all (equal first) ins then first
            else mk width (App (Mux, sel :: ins)))
  | Zext, [ a ] when a.width = width -> a
  | Sext, [ a ] when a.width = width -> a
  | Zext, [ { node = App (Zext, [ b ]); width = wi; _ } ] when width >= wi ->
      app Zext ~width [ b ]
  | _ -> pushdown op width args

(* Bounded mux pushdown: a non-AC operator applied to a small selection
   mux and otherwise-constant operands distributes into the arms, where
   constant folding usually collapses them — the shape pooled shared
   units leave behind. *)
and pushdown op width args =
  let small t =
    match t.node with
    | App (Mux, sel :: ins) when List.length ins <= 8 -> Some (sel, ins)
    | _ -> None
  in
  match args with
  | [ a ] -> (
      match small a with
      | Some (sel, ins) ->
          app Mux ~width (sel :: List.map (fun i -> app op ~width [ i ]) ins)
      | None -> mk width (App (op, args)))
  | [ a; b ] -> (
      match (small a, is_const b, is_const a, small b) with
      | Some (sel, ins), true, _, _ ->
          app Mux ~width
            (sel :: List.map (fun i -> app op ~width [ i; b ]) ins)
      | _, _, true, Some (sel, ins) ->
          app Mux ~width
            (sel :: List.map (fun i -> app op ~width [ a; i ]) ins)
      | _ -> mk width (App (op, args)))
  | _ -> mk width (App (op, args))

let op_of_kind = function
  | "add" -> Some Add
  | "sub" -> None (* callers rewrite sub as Add [a; Neg b] *)
  | "mul" -> Some Mul
  | "divu" -> Some Divu
  | "divs" -> Some Divs
  | "remu" -> Some Remu
  | "rems" -> Some Rems
  | "and" -> Some And
  | "or" -> Some Or
  | "xor" -> Some Xor
  | "shl" -> Some Shl
  | "shrl" -> Some Shrl
  | "shra" -> Some Shra
  | "minu" -> Some Minu
  | "maxu" -> Some Maxu
  | "mins" -> Some Mins
  | "maxs" -> Some Maxs
  | "eq" -> Some Eq
  | "ne" -> Some Ne
  | "ltu" -> Some Ltu
  | "leu" -> Some Leu
  | "gtu" -> Some Gtu
  | "geu" -> Some Geu
  | "lts" -> Some Lts
  | "les" -> Some Les
  | "gts" -> Some Gts
  | "ges" -> Some Ges
  | "not" -> Some Not
  | "neg" -> Some Neg
  | "abs" -> Some Abs
  | "mux" -> Some Mux
  | "zext" -> Some Zext
  | "sext" -> Some Sext
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Traversal                                                            *)

let fold_nodes f acc t =
  let visited = Hashtbl.create 64 in
  let rec go acc t =
    if Hashtbl.mem visited t.id then acc
    else begin
      Hashtbl.replace visited t.id ();
      let acc = f acc t in
      match t.node with
      | Const _ | Var _ -> acc
      | Read (_, a) -> go acc a
      | App (_, args) -> List.fold_left go acc args
    end
  in
  go acc t

let vars t =
  List.sort_uniq compare
    (fold_nodes
       (fun acc n ->
         match n.node with Var v -> (v, n.width) :: acc | _ -> acc)
       [] t)

let reads t =
  List.rev
    (fold_nodes
       (fun acc n ->
         match n.node with
         | Read (m, a) -> (m, a, n.width) :: acc
         | _ -> acc)
       [] t)

(* ------------------------------------------------------------------ *)
(* Evaluation                                                           *)

type env = {
  lookup : string -> width:int -> Bitvec.t;
  fetch : string -> addr:Bitvec.t -> width:int -> Bitvec.t;
}

let sample_env k =
  {
    lookup = (fun name ~width -> Sampler.value ~width name k);
    fetch =
      (fun name ~addr ~width ->
        Sampler.mem ~width name (Bitvec.to_int addr) k);
  }

let eval env t =
  let memo = Hashtbl.create 64 in
  let rec go t =
    match Hashtbl.find_opt memo t.id with
    | Some v -> v
    | None ->
        let v =
          match t.node with
          | Const v -> Bitvec.create ~width:t.width v
          | Var name -> env.lookup name ~width:t.width
          | Read (m, a) -> env.fetch m ~addr:(go a) ~width:t.width
          | App (op, args) -> apply_op op ~width:t.width (List.map go args)
        in
        Hashtbl.replace memo t.id v;
        v
  in
  go t

(* ------------------------------------------------------------------ *)

let op_name = function
  | Add -> "add"
  | Mul -> "mul"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Neg -> "neg"
  | Not -> "not"
  | Abs -> "abs"
  | Divu -> "divu"
  | Divs -> "divs"
  | Remu -> "remu"
  | Rems -> "rems"
  | Shl -> "shl"
  | Shrl -> "shrl"
  | Shra -> "shra"
  | Minu -> "minu"
  | Maxu -> "maxu"
  | Mins -> "mins"
  | Maxs -> "maxs"
  | Eq -> "eq"
  | Ne -> "ne"
  | Ltu -> "ltu"
  | Leu -> "leu"
  | Gtu -> "gtu"
  | Geu -> "geu"
  | Lts -> "lts"
  | Les -> "les"
  | Gts -> "gts"
  | Ges -> "ges"
  | Mux -> "mux"
  | Zext -> "zext"
  | Sext -> "sext"

let rec to_string t =
  match t.node with
  | Const v -> Printf.sprintf "%d'd%d" t.width v
  | Var n -> n
  | Read (m, a) -> Printf.sprintf "%s[%s]" m (to_string a)
  | App (op, args) ->
      Printf.sprintf "(%s %s)" (op_name op)
        (String.concat " " (List.map to_string args))
