exception Combinational_loop of string
exception Drive_conflict of string

type signal = {
  sid : int;
  sname : string;
  swidth : int;
  mutable cur : Bitvec.t;
  mutable staged : Bitvec.t option;  (* assignment staged for the next delta *)
  mutable sensitive : process list;  (* in registration order, reversed *)
  mutable hooks : (unit -> unit) list;  (* on_change callbacks, reversed *)
  mutable corrupt : (Bitvec.t -> Bitvec.t) option;
      (* fault-injection transform applied to every committed value *)
}

and process = {
  pid : int;
  pname : string;
  body : unit -> unit;
  mutable queued : bool;
}

type event = Assign of signal * Bitvec.t | Activate of process

type stop_reason =
  | Finished
  | Stop_requested of string
  | Max_time_reached
  | Max_events_reached

type stats = {
  events : int;
  activations : int;
  deltas : int;
  time_points : int;
  drive_collisions : int;
}

type t = {
  heap : event Event_heap.t;
  strict : bool;
  max_deltas : int;
  mutable time : int;
  mutable next_sid : int;
  mutable next_pid : int;
  mutable delta_signals : signal list;  (* signals with a staged value, reversed *)
  mutable delta_procs : process list;  (* activations for the next delta, reversed *)
  mutable stop : string option;
  mutable n_events : int;
  mutable n_activations : int;
  mutable n_deltas : int;
  mutable n_time_points : int;
  mutable n_collisions : int;
}

let create ?(strict_drivers = false) ?(max_deltas = 10_000) () =
  {
    heap = Event_heap.create ();
    strict = strict_drivers;
    max_deltas;
    time = 0;
    next_sid = 0;
    next_pid = 0;
    delta_signals = [];
    delta_procs = [];
    stop = None;
    n_events = 0;
    n_activations = 0;
    n_deltas = 0;
    n_time_points = 0;
    n_collisions = 0;
  }

let now t = t.time

let signal t ~name ?initial width =
  let initial =
    match initial with
    | Some v ->
        if Bitvec.width v <> width then
          invalid_arg
            (Printf.sprintf "Engine.signal %s: initial width %d <> %d" name
               (Bitvec.width v) width);
        v
    | None -> Bitvec.zero width
  in
  let s =
    {
      sid = t.next_sid;
      sname = name;
      swidth = width;
      cur = initial;
      staged = None;
      sensitive = [];
      hooks = [];
      corrupt = None;
    }
  in
  t.next_sid <- t.next_sid + 1;
  s

let name s = s.sname
let width s = s.swidth
let value s = s.cur
let value_int s = Bitvec.to_int s.cur

let apply_corruption s v =
  match s.corrupt with
  | None -> v
  | Some f ->
      let v' = f v in
      if Bitvec.width v' <> s.swidth then
        invalid_arg
          (Printf.sprintf "Engine: corruption on %s changed width %d -> %d"
             s.sname s.swidth (Bitvec.width v'))
      else v'

let corrupt_signal t s f =
  ignore t;
  s.corrupt <- Some f;
  (* The fault holds from the start: rewrite the current value too, so a
     stuck-at bit is wrong even before the first commit touches it. *)
  s.cur <- apply_corruption s s.cur

let clear_corruption s = s.corrupt <- None

let stage t s v =
  let v = apply_corruption s v in
  (match s.staged with
  | Some _ ->
      t.n_collisions <- t.n_collisions + 1;
      if t.strict then
        raise
          (Drive_conflict
             (Printf.sprintf "signal %s driven twice in one delta at t=%d"
                s.sname t.time))
  | None -> t.delta_signals <- s :: t.delta_signals);
  s.staged <- Some v

let drive t s ?(delay = 0) v =
  if delay < 0 then invalid_arg "Engine.drive: negative delay";
  if Bitvec.width v <> s.swidth then
    invalid_arg
      (Printf.sprintf "Engine.drive %s: value width %d <> signal width %d"
         s.sname (Bitvec.width v) s.swidth);
  if delay = 0 then stage t s v
  else Event_heap.push t.heap ~time:(t.time + delay) (Assign (s, v))

let force _t s v =
  if Bitvec.width v <> s.swidth then
    invalid_arg (Printf.sprintf "Engine.force %s: width mismatch" s.sname);
  s.cur <- apply_corruption s v

let on_change _t s f = s.hooks <- f :: s.hooks

let queue_process t p =
  if not p.queued then begin
    p.queued <- true;
    t.delta_procs <- p :: t.delta_procs
  end

let process t ~name ?(sensitivity = []) body =
  let p = { pid = t.next_pid; pname = name; body; queued = false } in
  t.next_pid <- t.next_pid + 1;
  List.iter (fun s -> s.sensitive <- p :: s.sensitive) sensitivity;
  (* Initialization pass: every process runs once when simulation reaches
     the current time, mirroring VHDL elaboration. *)
  queue_process t p;
  p

let add_sensitivity p s = s.sensitive <- p :: s.sensitive

let wake_at t p ~delay =
  if delay < 0 then invalid_arg "Engine.wake_at: negative delay";
  if delay = 0 then queue_process t p
  else Event_heap.push t.heap ~time:(t.time + delay) (Activate p)

let on_rising_edge t ~clock ~name body =
  let last = ref (Bitvec.to_bool clock.cur) in
  let wrapped () =
    let level = Bitvec.to_bool clock.cur in
    if level && not !last then body ();
    last := level
  in
  process t ~name ~sensitivity:[ clock ] wrapped

let request_stop t reason = if t.stop = None then t.stop <- Some reason

(* Execute every delta cycle of the current time point. *)
let run_time_point t max_events =
  t.n_time_points <- t.n_time_points + 1;
  let deltas_here = ref 0 in
  let rec delta () =
    if t.delta_signals = [] && t.delta_procs = [] then ()
    else begin
      incr deltas_here;
      t.n_deltas <- t.n_deltas + 1;
      if !deltas_here > t.max_deltas then
        raise
          (Combinational_loop
             (Printf.sprintf
                "no convergence after %d delta cycles at t=%d (last signals: %s)"
                t.max_deltas t.time
                (String.concat ", "
                   (List.filteri (fun i _ -> i < 5)
                      (List.map (fun s -> s.sname) t.delta_signals)))));
      let signals = List.rev t.delta_signals in
      let procs = List.rev t.delta_procs in
      t.delta_signals <- [];
      t.delta_procs <- [];
      (* Phase 1: apply assignments, find changes, wake + notify. *)
      let to_run = ref [] in
      let changed_hooks = ref [] in
      List.iter
        (fun s ->
          match s.staged with
          | None -> ()
          | Some v ->
              s.staged <- None;
              t.n_events <- t.n_events + 1;
              if not (Bitvec.equal s.cur v) then begin
                s.cur <- v;
                List.iter
                  (fun p ->
                    if not p.queued then begin
                      p.queued <- true;
                      to_run := p :: !to_run
                    end)
                  (List.rev s.sensitive);
                if s.hooks <> [] then changed_hooks := s :: !changed_hooks
              end)
        signals;
      (* Explicit activations join the run set after signal wake-ups. *)
      List.iter
        (fun p ->
          (* queued was set when the activation was enqueued *)
          to_run := p :: !to_run)
        procs;
      List.iter (fun s -> List.iter (fun f -> f ()) (List.rev s.hooks))
        (List.rev !changed_hooks);
      (* Phase 2: run processes; their zero-delay drives feed the next
         delta via [delta_signals] / [delta_procs]. *)
      let run_list = List.sort (fun a b -> compare a.pid b.pid) !to_run in
      List.iter
        (fun p ->
          p.queued <- false;
          t.n_activations <- t.n_activations + 1;
          p.body ())
        run_list;
      (* A requested stop still lets the current time point settle (all
         remaining deltas run); the outer loop honours it afterwards. *)
      if t.n_events < max_events then delta ()
    end
  in
  delta ()

let drain_due_events t =
  let due = Event_heap.pop_at t.heap t.time in
  List.iter
    (function
      | Assign (s, v) -> stage t s v
      | Activate p -> queue_process t p)
    due

let run ?(max_time = max_int) ?(max_events = max_int) t =
  let rec loop () =
    match t.stop with
    | Some reason ->
        t.stop <- None;
        Stop_requested reason
    | None ->
        if t.n_events >= max_events then Max_events_reached
        else if t.delta_signals <> [] || t.delta_procs <> [] then begin
          run_time_point t max_events;
          loop ()
        end
        else begin
          match Event_heap.min_time t.heap with
          | None -> Finished
          | Some next ->
              if next > max_time then begin
                t.time <- max_time;
                Max_time_reached
              end
              else begin
                t.time <- next;
                drain_due_events t;
                run_time_point t max_events;
                loop ()
              end
        end
  in
  loop ()

let run_for t d = run ~max_time:(t.time + d) t

let stats t =
  {
    events = t.n_events;
    activations = t.n_activations;
    deltas = t.n_deltas;
    time_points = t.n_time_points;
    drive_collisions = t.n_collisions;
  }

let pp_stop_reason ppf = function
  | Finished -> Format.pp_print_string ppf "finished (event queue empty)"
  | Stop_requested r -> Format.fprintf ppf "stop requested: %s" r
  | Max_time_reached -> Format.pp_print_string ppf "max simulation time reached"
  | Max_events_reached -> Format.pp_print_string ppf "max event count reached"
