(** The Reconfiguration Transition Graph (RTG) XML dialect.

    When the compiler splits an algorithm into several configurations
    (temporal partitions), the RTG records the order in which they must be
    loaded onto the reconfigurable fabric: one node per configuration
    (a datapath / FSM pair, referenced by name), and an edge [a -> b]
    meaning "when [a]'s controller reaches a done state, reconfigure to
    [b]". A configuration with no outgoing edge terminates the run.

    Concrete XML:
    {v
<rtg name="fdct2" initial="part1">
  <configuration name="part1" datapath="part1_dp" fsm="part1_fsm"/>
  <configuration name="part2" datapath="part2_dp" fsm="part2_fsm"/>
  <transition from="part1" to="part2"/>
</rtg>
    v} *)

type configuration = {
  cfg_name : string;
  datapath_ref : string;  (** Name of the datapath document. *)
  fsm_ref : string;  (** Name of the FSM document. *)
}

type transition = { src : string; dst : string }

type t = {
  rtg_name : string;
  initial : string;
  configurations : configuration list;
  transitions : transition list;
}

val singleton : name:string -> datapath_ref:string -> fsm_ref:string -> t
(** The trivial RTG of a single-configuration implementation. *)

val find_configuration : t -> string -> configuration option
val successor : t -> string -> string option
(** Next configuration after the named one completes. *)

val execution_order : t -> string list
(** Configuration names from [initial] following successors; stops on the
    first configuration visited twice (cycle guard). *)

val configuration_count : t -> int

(** {1 Validation} *)

val check_diags : t -> Diag.t list
(** Diagnostics; empty = well-formed. Checks unique names (RTG001),
    non-emptiness (RTG002), the initial configuration (RTG003), at most
    one outgoing transition per configuration (RTG004), transition
    endpoints (RTG005), acyclicity (RTG006), and that every configuration
    is reachable from the initial one (RTG007). *)

val check : t -> string list
(** {!check_diags} rendered as plain messages — the legacy interface. *)

exception Invalid of string list

val validate : t -> unit

(** {1 XML} *)

val to_xml : t -> Xmlkit.Xml.t
val of_xml : Xmlkit.Xml.t -> t
val save : string -> t -> unit
val load : string -> t
