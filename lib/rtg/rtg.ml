module Xml = Xmlkit.Xml
module Q = Xmlkit.Xml_query

type configuration = {
  cfg_name : string;
  datapath_ref : string;
  fsm_ref : string;
}

type transition = { src : string; dst : string }

type t = {
  rtg_name : string;
  initial : string;
  configurations : configuration list;
  transitions : transition list;
}

let singleton ~name ~datapath_ref ~fsm_ref =
  {
    rtg_name = name;
    initial = name;
    configurations = [ { cfg_name = name; datapath_ref; fsm_ref } ];
    transitions = [];
  }

let find_configuration rtg name =
  List.find_opt (fun c -> c.cfg_name = name) rtg.configurations

let successor rtg name =
  List.find_opt (fun tr -> tr.src = name) rtg.transitions
  |> Option.map (fun tr -> tr.dst)

let execution_order rtg =
  let rec follow seen name =
    if List.mem name seen then List.rev seen
    else
      match successor rtg name with
      | None -> List.rev (name :: seen)
      | Some next -> follow (name :: seen) next
  in
  follow [] rtg.initial

let configuration_count rtg = List.length rtg.configurations

let duplicates names =
  let sorted = List.sort compare names in
  let rec loop acc = function
    | a :: (b :: _ as rest) -> loop (if a = b then a :: acc else acc) rest
    | [ _ ] | [] -> List.sort_uniq compare acc
  in
  loop [] sorted

(* Diagnostic codes RTG001..RTG007. *)
let check_diags rtg =
  let diags = ref [] in
  let err ?hint ~code ~loc fmt =
    Format.kasprintf
      (fun s -> diags := Diag.error ?hint ~code ~loc "%s" s :: !diags)
      fmt
  in
  List.iter (fun n -> err ~code:"RTG001" ~loc:"" "duplicate configuration %S" n)
    (duplicates (List.map (fun c -> c.cfg_name) rtg.configurations));
  if rtg.configurations = [] then err ~code:"RTG002" ~loc:"" "no configurations";
  if find_configuration rtg rtg.initial = None then
    err ~code:"RTG003" ~loc:""
      "initial configuration %S does not exist" rtg.initial;
  List.iter
    (fun n ->
      err ~code:"RTG004" ~loc:""
        ~hint:"a configuration reconfigures to at most one successor"
        "configuration %S has several outgoing transitions" n)
    (duplicates (List.map (fun tr -> tr.src) rtg.transitions));
  List.iter
    (fun tr ->
      if find_configuration rtg tr.src = None then
        err ~code:"RTG005" ~loc:""
          "transition from unknown configuration %S" tr.src;
      if find_configuration rtg tr.dst = None then
        err ~code:"RTG005" ~loc:""
          "transition to unknown configuration %S" tr.dst)
    rtg.transitions;
  (* Follow the chain from initial: detect cycles and unreachable nodes. *)
  if !diags = [] then begin
    let order = execution_order rtg in
    (match successor rtg (List.nth order (List.length order - 1)) with
    | Some next when List.mem next order ->
        err ~code:"RTG006" ~loc:""
          ~hint:"the reconfiguration sequence would never terminate"
          "cycle: configuration %S re-entered" next
    | Some _ | None -> ());
    List.iter
      (fun c ->
        if not (List.mem c.cfg_name order) then
          err ~code:"RTG007" ~loc:""
            "configuration %S unreachable from %S" c.cfg_name rtg.initial)
      rtg.configurations
  end;
  List.rev !diags

let check rtg = List.map Diag.to_message (check_diags rtg)

exception Invalid of string list

let validate rtg = match check rtg with [] -> () | errs -> raise (Invalid errs)

let to_xml rtg =
  Xml.element "rtg"
    ~attrs:[ ("name", rtg.rtg_name); ("initial", rtg.initial) ]
    ~children:
      (List.map
         (fun c ->
           Xml.element "configuration"
             ~attrs:
               [
                 ("name", c.cfg_name);
                 ("datapath", c.datapath_ref);
                 ("fsm", c.fsm_ref);
               ])
         rtg.configurations
      @ List.map
          (fun tr ->
            Xml.element "transition"
              ~attrs:[ ("from", tr.src); ("to", tr.dst) ])
          rtg.transitions)

let of_xml doc =
  let root = Q.as_element doc in
  if root.Xml.tag <> "rtg" then
    Q.fail (Printf.sprintf "expected <rtg>, found <%s>" root.Xml.tag);
  {
    rtg_name = Q.attr root "name";
    initial = Q.attr root "initial";
    configurations =
      Q.children root "configuration"
      |> List.map (fun e ->
             {
               cfg_name = Q.attr e "name";
               datapath_ref = Q.attr e "datapath";
               fsm_ref = Q.attr e "fsm";
             });
    transitions =
      Q.children root "transition"
      |> List.map (fun e -> { src = Q.attr e "from"; dst = Q.attr e "to" });
  }

let save path rtg = Xml.save path (to_xml rtg)
let load path = of_xml (Xmlkit.Xml_parser.parse_file path)
