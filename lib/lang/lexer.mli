(** Lexical analysis of the source language. *)

type token =
  | Ident of string
  | Number of int
  | Kw_program | Kw_width | Kw_mem | Kw_var
  | Kw_if | Kw_else | Kw_while | Kw_for | Kw_partition | Kw_assert | Kw_probe
  | Lparen | Rparen | Lbrace | Rbrace | Lbracket | Rbracket
  | Semicolon | Comma | Assign_op
  | Plus | Minus | Star | Slash | Percent
  | Amp | Pipe | Caret | Tilde
  | Shl_op | Shra_op | Shrl_op
  | Eq_op | Ne_op | Lt_op | Le_op | Gt_op | Ge_op
  | And_op | Or_op | Not_op
  | Eof

exception Lex_error of { line : int; col : int; message : string }

val tokenize : string -> (token * int * int) list
(** Token stream as [(token, line, column)] with 1-based positions (the
    column is the token's first character), ending with [Eof]. Comments
    ([// ...] to end of line and [/* ... */]) are skipped. *)

val token_to_string : token -> string
