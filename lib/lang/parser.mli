(** Recursive-descent parser for the source language.

    Grammar (see {!Ast} for an example):
    {v
program ::= "program" ident "width" number ";" decl* stmt*
decl    ::= "mem" ident "[" number "]" ("=" "{" number ("," number)* "}")? ";"
          | "var" ident ("=" number)? ";"
          | "probe" ident ";"
stmt    ::= ident "=" expr ";"
          | ident "[" expr "]" "=" expr ";"
          | "if" "(" cond ")" block ("else" (block | if-stmt))?
          | "while" "(" cond ")" block
          | "for" "(" assign ";" cond ";" assign ")" block
          | "partition" ";"
block   ::= "{" stmt* "}"
cond    ::= c-or ; c-or ::= c-and ("||" c-and)*
c-and   ::= c-not ("&&" c-not)* ; c-not ::= "!" c-not | c-atom
c-atom  ::= "(" cond ")" | expr cmp expr
expr    ::= bit-or with C-like precedence:
            * / %  >  + -  >  << >> >>>  >  &  >  ^  >  |
atom    ::= number | ident | ident "[" expr "]" | "(" expr ")"
          | "-" atom | "~" atom
    v}
    The [for] form desugars to [init; while (cond) { body; update }]. *)

exception Parse_error of { line : int; col : int; message : string }
(** Positions are 1-based; [col] is the column of the offending token's
    first character. *)

val error_to_string : exn -> string option
(** Human-readable rendering of {!Parse_error} and {!Lexer.Lex_error}
    (with line and column); [None] on other exceptions. *)

val parse_string : string -> Ast.program
(** Raises {!Parse_error} or {!Lexer.Lex_error}. *)

val parse_file : string -> Ast.program

val source_line_count : string -> int
(** Non-blank, non-comment-only lines — the Table I "loJava" metric. *)
