open Lexer

exception Parse_error of { line : int; col : int; message : string }

type state = { mutable toks : (token * int * int) list }

let current st = match st.toks with (t, _, _) :: _ -> t | [] -> Eof
let line st = match st.toks with (_, l, _) :: _ -> l | [] -> 0
let col st = match st.toks with (_, _, c) :: _ -> c | [] -> 0
let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let error st fmt =
  Format.kasprintf
    (fun message ->
      raise (Parse_error { line = line st; col = col st; message }))
    fmt

let error_to_string = function
  | Parse_error { line; col; message } ->
      Some (Printf.sprintf "parse error at line %d, column %d: %s" line col message)
  | Lex_error { line; col; message } ->
      Some (Printf.sprintf "lexical error at line %d, column %d: %s" line col message)
  | _ -> None

let expect st tok =
  if current st = tok then advance st
  else
    error st "expected %s, found %s" (token_to_string tok)
      (token_to_string (current st))

let expect_ident st =
  match current st with
  | Ident name ->
      advance st;
      name
  | t -> error st "expected an identifier, found %s" (token_to_string t)

let expect_comma st =
  match current st with
  | Comma -> advance st
  | t -> error st "expected ',', found %s" (token_to_string t)

let expect_number st =
  match current st with
  | Number v ->
      advance st;
      v
  | Minus ->
      advance st;
      (match current st with
      | Number v ->
          advance st;
          -v
      | t -> error st "expected a number, found %s" (token_to_string t))
  | t -> error st "expected a number, found %s" (token_to_string t)

(* --- expressions -------------------------------------------------- *)

let rec parse_expr st = parse_bor st

and parse_bor st =
  let left = parse_bxor st in
  if current st = Pipe then begin
    advance st;
    Ast.Binop (Ast.Bor, left, parse_bor st)
  end
  else left

and parse_bxor st =
  let left = parse_band st in
  if current st = Caret then begin
    advance st;
    Ast.Binop (Ast.Bxor, left, parse_bxor st)
  end
  else left

and parse_band st =
  let left = parse_shift st in
  if current st = Amp then begin
    advance st;
    Ast.Binop (Ast.Band, left, parse_band st)
  end
  else left

and parse_shift st =
  let left = parse_additive st in
  match current st with
  | Shl_op ->
      advance st;
      Ast.Binop (Ast.Shl, left, parse_additive st)
  | Shra_op ->
      advance st;
      Ast.Binop (Ast.Shra, left, parse_additive st)
  | Shrl_op ->
      advance st;
      Ast.Binop (Ast.Shrl, left, parse_additive st)
  | _ -> left

and parse_additive st =
  let rec loop left =
    match current st with
    | Plus ->
        advance st;
        loop (Ast.Binop (Ast.Add, left, parse_multiplicative st))
    | Minus ->
        advance st;
        loop (Ast.Binop (Ast.Sub, left, parse_multiplicative st))
    | _ -> left
  in
  loop (parse_multiplicative st)

and parse_multiplicative st =
  let rec loop left =
    match current st with
    | Star ->
        advance st;
        loop (Ast.Binop (Ast.Mul, left, parse_atom st))
    | Slash ->
        advance st;
        loop (Ast.Binop (Ast.Div, left, parse_atom st))
    | Percent ->
        advance st;
        loop (Ast.Binop (Ast.Rem, left, parse_atom st))
    | _ -> left
  in
  loop (parse_atom st)

and parse_atom st =
  match current st with
  | Number v ->
      advance st;
      Ast.Int v
  | Minus ->
      advance st;
      Ast.Unop (Ast.Neg, parse_atom st)
  | Tilde ->
      advance st;
      Ast.Unop (Ast.Bnot, parse_atom st)
  | Lparen ->
      advance st;
      let e = parse_expr st in
      expect st Rparen;
      e
  | Ident name -> (
      advance st;
      match current st with
      | Lbracket ->
          advance st;
          let addr = parse_expr st in
          expect st Rbracket;
          Ast.Mem_read (name, addr)
      | _ -> Ast.Var name)
  | t -> error st "expected an expression, found %s" (token_to_string t)

(* --- conditions --------------------------------------------------- *)

let rec parse_cond st = parse_cor st

and parse_cor st =
  let left = parse_cand st in
  if current st = Or_op then begin
    advance st;
    Ast.Cor (left, parse_cor st)
  end
  else left

and parse_cand st =
  let left = parse_cnot st in
  if current st = And_op then begin
    advance st;
    Ast.Cand (left, parse_cand st)
  end
  else left

and parse_cnot st =
  if current st = Not_op then begin
    advance st;
    Ast.Cnot (parse_cnot st)
  end
  else parse_catom st

and parse_catom st =
  (* '(' is ambiguous between a parenthesized condition and an expression;
     resolve by backtracking on the comparison operator. *)
  match current st with
  | Lparen -> (
      let saved = st.toks in
      advance st;
      match try_cond st with
      | Some cond when current st = Rparen ->
          advance st;
          cond
      | Some _ | None ->
          st.toks <- saved;
          parse_cmp st)
  | _ -> parse_cmp st

and try_cond st =
  (* Attempt to parse a full condition; roll back on failure. *)
  let saved = st.toks in
  match parse_cond st with
  | cond -> Some cond
  | exception Parse_error _ ->
      st.toks <- saved;
      None

and parse_cmp st =
  let left = parse_expr st in
  let op =
    match current st with
    | Eq_op -> Ast.Eq
    | Ne_op -> Ast.Ne
    | Lt_op -> Ast.Lt
    | Le_op -> Ast.Le
    | Gt_op -> Ast.Gt
    | Ge_op -> Ast.Ge
    | t -> error st "expected a comparison operator, found %s" (token_to_string t)
  in
  advance st;
  let right = parse_expr st in
  Ast.Cmp (op, left, right)

(* --- statements --------------------------------------------------- *)

let parse_assign st =
  let name = expect_ident st in
  match current st with
  | Lbracket ->
      advance st;
      let addr = parse_expr st in
      expect st Rbracket;
      expect st Assign_op;
      let value = parse_expr st in
      Ast.Mem_write (name, addr, value)
  | _ ->
      expect st Assign_op;
      let value = parse_expr st in
      Ast.Assign (name, value)

(* [parse_stmt] yields a list so the [for] form can desugar into
   [init; while (cond) { body; update }] without a wrapper node. *)
let rec parse_stmt st =
  match current st with
  | Kw_partition ->
      advance st;
      expect st Semicolon;
      [ Ast.Partition ]
  | Kw_assert ->
      advance st;
      expect st Lparen;
      let cond = parse_cond st in
      expect st Rparen;
      expect st Semicolon;
      [ Ast.Assert cond ]
  | Kw_if ->
      advance st;
      expect st Lparen;
      let cond = parse_cond st in
      expect st Rparen;
      let then_branch = parse_block st in
      let else_branch =
        if current st = Kw_else then begin
          advance st;
          if current st = Kw_if then parse_stmt st else parse_block st
        end
        else []
      in
      [ Ast.If (cond, then_branch, else_branch) ]
  | Kw_while ->
      advance st;
      expect st Lparen;
      let cond = parse_cond st in
      expect st Rparen;
      [ Ast.While (cond, parse_block st) ]
  | Kw_for ->
      advance st;
      expect st Lparen;
      let init = parse_assign st in
      expect st Semicolon;
      let cond = parse_cond st in
      expect st Semicolon;
      let update = parse_assign st in
      expect st Rparen;
      let body = parse_block st in
      [ init; Ast.While (cond, body @ [ update ]) ]
  | Ident _ ->
      let s = parse_assign st in
      expect st Semicolon;
      [ s ]
  | t -> error st "expected a statement, found %s" (token_to_string t)

and parse_block st =
  expect st Lbrace;
  let rec loop acc =
    if current st = Rbrace then begin
      advance st;
      List.concat (List.rev acc)
    end
    else loop (parse_stmt st :: acc)
  in
  loop []

(* --- program ------------------------------------------------------ *)

let parse_program st =
  expect st Kw_program;
  let name = expect_ident st in
  expect st Kw_width;
  let width = expect_number st in
  expect st Semicolon;
  let mems = ref [] and vars = ref [] and probes = ref [] in
  let rec decls () =
    match current st with
    | Kw_mem ->
        advance st;
        let mem_name = expect_ident st in
        expect st Lbracket;
        let mem_size = expect_number st in
        expect st Rbracket;
        let mem_init =
          if current st = Assign_op then begin
            advance st;
            expect st Lbrace;
            let rec values acc =
              let v = expect_number st in
              match current st with
              | Rbrace ->
                  advance st;
                  List.rev (v :: acc)
              | _ ->
                  (* values are comma-less: separated by whitespace is
                     ambiguous with negative numbers, so require commas *)
                  expect_comma st;
                  values (v :: acc)
            in
            values []
          end
          else []
        in
        expect st Semicolon;
        mems := { Ast.mem_name; mem_size; mem_init } :: !mems;
        decls ()
    | Kw_probe ->
        advance st;
        let name = expect_ident st in
        expect st Semicolon;
        probes := name :: !probes;
        decls ()
    | Kw_var ->
        advance st;
        let var_name = expect_ident st in
        let var_init =
          if current st = Assign_op then begin
            advance st;
            expect_number st
          end
          else 0
        in
        expect st Semicolon;
        vars := { Ast.var_name; var_init } :: !vars;
        decls ()
    | _ -> ()
  in
  decls ();
  let rec stmts acc =
    if current st = Eof then List.concat (List.rev acc)
    else stmts (parse_stmt st :: acc)
  in
  let body = stmts [] in
  {
    Ast.prog_name = name;
    prog_width = width;
    mems = List.rev !mems;
    vars = List.rev !vars;
    probes = List.rev !probes;
    body;
  }

let parse_string src =
  let st = { toks = tokenize src } in
  let prog = parse_program st in
  (match current st with
  | Eof -> ()
  | t -> error st "trailing input: %s" (token_to_string t));
  prog

let parse_file path =
  let ic = open_in_bin path in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse_string src

let source_line_count src =
  let lines = String.split_on_char '\n' src in
  let in_block = ref false in
  let counted line =
    (* Strip '//' comments and blanks; track '/* */' blocks coarsely. *)
    let line = String.trim line in
    if !in_block then begin
      (match String.index_opt line '*' with
      | Some i when i + 1 < String.length line && line.[i + 1] = '/' ->
          in_block := false
      | Some _ | None -> ());
      false
    end
    else if line = "" then false
    else if String.length line >= 2 && String.sub line 0 2 = "//" then false
    else if String.length line >= 2 && String.sub line 0 2 = "/*" then begin
      (let has_close =
         let rec find i =
           i + 1 < String.length line
           && ((line.[i] = '*' && line.[i + 1] = '/') || find (i + 1))
         in
         find 2
       in
       if not has_close then in_block := true);
      false
    end
    else true
  in
  List.length (List.filter counted lines)
