type token =
  | Ident of string
  | Number of int
  | Kw_program | Kw_width | Kw_mem | Kw_var
  | Kw_if | Kw_else | Kw_while | Kw_for | Kw_partition | Kw_assert | Kw_probe
  | Lparen | Rparen | Lbrace | Rbrace | Lbracket | Rbracket
  | Semicolon | Comma | Assign_op
  | Plus | Minus | Star | Slash | Percent
  | Amp | Pipe | Caret | Tilde
  | Shl_op | Shra_op | Shrl_op
  | Eq_op | Ne_op | Lt_op | Le_op | Gt_op | Ge_op
  | And_op | Or_op | Not_op
  | Eof

exception Lex_error of { line : int; col : int; message : string }

let keyword = function
  | "program" -> Some Kw_program
  | "width" -> Some Kw_width
  | "mem" -> Some Kw_mem
  | "var" -> Some Kw_var
  | "if" -> Some Kw_if
  | "else" -> Some Kw_else
  | "while" -> Some Kw_while
  | "for" -> Some Kw_for
  | "partition" -> Some Kw_partition
  | "assert" -> Some Kw_assert
  | "probe" -> Some Kw_probe
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  (* Index of the current line's first character, so a token's column is
     its start index minus [bol], 1-based. *)
  let bol = ref 0 in
  let toks = ref [] in
  let i = ref 0 in
  let col_at pos = pos - !bol + 1 in
  let push t = toks := (t, !line, col_at !i) :: !toks in
  let error fmt =
    Format.kasprintf
      (fun message ->
        raise (Lex_error { line = !line; col = col_at !i; message }))
      fmt
  in
  let peek k = if !i + k < n then src.[!i + k] else '\000' in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin incr line; incr i; bol := !i end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && peek 1 = '/' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '/' && peek 1 = '*' then begin
      i := !i + 2;
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '\n' then begin incr line; bol := !i + 1 end;
        if src.[!i] = '*' && peek 1 = '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then error "unterminated comment"
    end
    else if is_digit c then begin
      let start = !i in
      let push t = toks := (t, !line, col_at start) :: !toks in
      if c = '0' && (peek 1 = 'x' || peek 1 = 'X') then begin
        i := !i + 2;
        while !i < n && (is_digit src.[!i]
                         || (src.[!i] >= 'a' && src.[!i] <= 'f')
                         || (src.[!i] >= 'A' && src.[!i] <= 'F')) do
          incr i
        done
      end
      else while !i < n && is_digit src.[!i] do incr i done;
      let text = String.sub src start (!i - start) in
      match int_of_string_opt text with
      | Some v -> push (Number v)
      | None -> error "bad number %S" text
    end
    else if is_ident_start c then begin
      let start = !i in
      let push t = toks := (t, !line, col_at start) :: !toks in
      while !i < n && is_ident_char src.[!i] do incr i done;
      let text = String.sub src start (!i - start) in
      push (match keyword text with Some kw -> kw | None -> Ident text)
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      let three = if !i + 2 < n then String.sub src !i 3 else "" in
      if three = ">>>" then begin push Shrl_op; i := !i + 3 end
      else if two = "<<" then begin push Shl_op; i := !i + 2 end
      else if two = ">>" then begin push Shra_op; i := !i + 2 end
      else if two = "==" then begin push Eq_op; i := !i + 2 end
      else if two = "!=" then begin push Ne_op; i := !i + 2 end
      else if two = "<=" then begin push Le_op; i := !i + 2 end
      else if two = ">=" then begin push Ge_op; i := !i + 2 end
      else if two = "&&" then begin push And_op; i := !i + 2 end
      else if two = "||" then begin push Or_op; i := !i + 2 end
      else begin
        (match c with
        | '(' -> push Lparen
        | ')' -> push Rparen
        | '{' -> push Lbrace
        | '}' -> push Rbrace
        | '[' -> push Lbracket
        | ']' -> push Rbracket
        | ';' -> push Semicolon
        | ',' -> push Comma
        | '=' -> push Assign_op
        | '+' -> push Plus
        | '-' -> push Minus
        | '*' -> push Star
        | '/' -> push Slash
        | '%' -> push Percent
        | '&' -> push Amp
        | '|' -> push Pipe
        | '^' -> push Caret
        | '~' -> push Tilde
        | '<' -> push Lt_op
        | '>' -> push Gt_op
        | '!' -> push Not_op
        | c -> error "unexpected character %C" c);
        incr i
      end
    end
  done;
  push Eof;
  List.rev !toks

let token_to_string = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Number v -> Printf.sprintf "number %d" v
  | Kw_program -> "\"program\""
  | Kw_width -> "\"width\""
  | Kw_mem -> "\"mem\""
  | Kw_var -> "\"var\""
  | Kw_if -> "\"if\""
  | Kw_else -> "\"else\""
  | Kw_while -> "\"while\""
  | Kw_for -> "\"for\""
  | Kw_partition -> "\"partition\""
  | Kw_assert -> "\"assert\""
  | Kw_probe -> "\"probe\""
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Lbracket -> "'['"
  | Rbracket -> "']'"
  | Semicolon -> "';'"
  | Comma -> "','"
  | Assign_op -> "'='"
  | Plus -> "'+'"
  | Minus -> "'-'"
  | Star -> "'*'"
  | Slash -> "'/'"
  | Percent -> "'%'"
  | Amp -> "'&'"
  | Pipe -> "'|'"
  | Caret -> "'^'"
  | Tilde -> "'~'"
  | Shl_op -> "'<<'"
  | Shra_op -> "'>>'"
  | Shrl_op -> "'>>>'"
  | Eq_op -> "'=='"
  | Ne_op -> "'!='"
  | Lt_op -> "'<'"
  | Le_op -> "'<='"
  | Gt_op -> "'>'"
  | Ge_op -> "'>='"
  | And_op -> "'&&'"
  | Or_op -> "'||'"
  | Not_op -> "'!'"
  | Eof -> "end of input"
