open Sim
module Elaborate = Transform.Elaborate
module Fsm_exec = Transform.Fsm_exec
module Models_log = Transform.Models_log

type config_run = {
  cfg_name : string;
  stop : Engine.stop_reason;
  completed : bool;
  cycles : int;
  sim_stats : Engine.stats;
  final_state : string;
  wall_seconds : float;
  notifications : Operators.Models.notification list;
}

type rtg_run = {
  runs : config_run list;
  all_completed : bool;
  total_cycles : int;
  total_wall_seconds : float;
}

let run_configuration ?(clock_period = 10) ?(max_cycles = 10_000_000)
    ?vcd_path ?name ~memories datapath fsm =
  let started = Sys.time () in
  let engine = Engine.create () in
  let clock = Clock.create engine ~period:clock_period () in
  let design = Elaborate.datapath ~engine ~clock ~memories datapath in
  let controller = Fsm_exec.attach ~design fsm in
  Fsm_exec.on_enter_done controller (fun () ->
      Engine.request_stop engine "controller done");
  let dump =
    match vcd_path with
    | None -> None
    | Some path ->
        let signals =
          (("clk", Clock.signal clock) :: design.Elaborate.controls)
          @ design.Elaborate.statuses
          @ [ ("fsm_state", Fsm_exec.state_signal controller) ]
          @ design.Elaborate.ports
        in
        Some (Vcd.create_file path engine signals)
  in
  let stop = Engine.run ~max_time:(clock_period * max_cycles) engine in
  (match dump with Some d -> Vcd.close d | None -> ());
  let completed = Fsm_exec.in_done_state controller in
  {
    cfg_name =
      (match name with
      | Some n -> n
      | None -> datapath.Netlist.Datapath.dp_name);
    stop;
    completed;
    cycles = Fsm_exec.cycles_seen controller;
    sim_stats = Engine.stats engine;
    final_state = Fsm_exec.current_state controller;
    wall_seconds = Sys.time () -. started;
    notifications = Models_log.all design.Elaborate.notifications;
  }

let run_rtg ?clock_period ?max_cycles ~memories ~datapaths ~fsms rtg =
  Rtg.validate rtg;
  let resolve what table name =
    match List.assoc_opt name table with
    | Some v -> v
    | None -> failwith (Printf.sprintf "run_rtg: unresolved %s %S" what name)
  in
  let order = Rtg.execution_order rtg in
  let rec go acc = function
    | [] -> List.rev acc
    | cfg_name :: rest ->
        let cfg =
          match Rtg.find_configuration rtg cfg_name with
          | Some c -> c
          | None -> failwith (Printf.sprintf "run_rtg: no configuration %S" cfg_name)
        in
        let datapath = resolve "datapath" datapaths cfg.Rtg.datapath_ref in
        let fsm = resolve "fsm" fsms cfg.Rtg.fsm_ref in
        let run =
          run_configuration ?clock_period ?max_cycles ~name:cfg_name ~memories
            datapath fsm
        in
        if run.completed then go (run :: acc) rest else List.rev (run :: acc)
  in
  let runs = go [] order in
  {
    runs;
    all_completed =
      List.length runs = List.length order
      && List.for_all (fun r -> r.completed) runs;
    total_cycles = List.fold_left (fun acc r -> acc + r.cycles) 0 runs;
    total_wall_seconds =
      List.fold_left (fun acc r -> acc +. r.wall_seconds) 0. runs;
  }

let run_compiled ?clock_period ?max_cycles ~memories (compiled : Compiler.Compile.t) =
  let datapaths =
    List.map
      (fun (p : Compiler.Compile.partition) ->
        (p.Compiler.Compile.datapath.Netlist.Datapath.dp_name,
         p.Compiler.Compile.datapath))
      compiled.Compiler.Compile.partitions
  in
  let fsms =
    List.map
      (fun (p : Compiler.Compile.partition) ->
        (p.Compiler.Compile.fsm.Fsmkit.Fsm.fsm_name, p.Compiler.Compile.fsm))
      compiled.Compiler.Compile.partitions
  in
  run_rtg ?clock_period ?max_cycles ~memories ~datapaths ~fsms
    compiled.Compiler.Compile.rtg
