(** Mutation campaigns: measure what the verification flow can detect.

    The paper's infrastructure answers "does the compiled design compute
    the same memories as the algorithm?". A mutation campaign turns that
    around: inject one seeded fault at a time ({!Faults.Fault}) into an
    otherwise-correct design and check the comparison {e notices}. A high
    kill rate is evidence the golden-model memory diff is a meaningful
    oracle; each surviving mutant is a concrete blind spot worth reading
    about in the report. *)

type outcome =
  | Killed of string
      (** The verifier detected the fault; the string says how ("memory
          output: 3 mismatches", assertion or OOB divergence). *)
  | Survived  (** The run completed and nothing observable differed. *)
  | Timeout
      (** The mutant exceeded the cycle budget (counts as detected: a
          hung design never reports success). *)

type mutant = {
  fault : Faults.Fault.t;
  outcome : outcome;
  mutant_cycles : int;
}

type class_stats = {
  cls : string;  (** A member of {!Faults.Fault.all_classes}. *)
  injected : int;
  killed : int;
  survived : int;
  timed_out : int;
}

type t = {
  workload : string;
  seed : int;
  requested : int;  (** Faults asked for; fewer run if sites run out. *)
  clean_passed : bool;
  clean_cycles : int;
  clean_oob : int;  (** Hardware OOB count of the clean run (baseline). *)
  mutants : mutant list;  (** In plan order. *)
  by_class : class_stats list;
  kill_rate : float;  (** Detected (killed + timeout) over injected. *)
}

val default_workloads : unit -> Suite.case list
(** The builtin suite plus campaign-specific cases ([gcd8], [divmod]). *)

val find_workload : string -> Suite.case option

val run : ?seed:int -> ?faults:int -> ?max_cycles_factor:int ->
  Suite.case -> t
(** Compile the workload once, run the golden model and a clean hardware
    simulation, then one mutated simulation per planned fault (fresh
    memory environment each time; cycle budget = clean cycles x
    [max_cycles_factor] + 1000). Same seed, same workload: identical
    plan and identical outcomes. Raises [Failure] when the {e clean}
    design already fails verification — a campaign over a broken design
    measures nothing. *)

val survivors : t -> mutant list

val outcome_to_string : outcome -> string
