(** Memory-content and stimulus files.

    The paper keeps "memory contents and I/O data" in plain files shared
    between the golden software run and the hardware simulation. Format:
    one word per line (decimal, negative allowed, or [0x] hex), [#]
    comments, and [@<addr>] directives to reposition. *)

exception Format_error of { line : int; message : string }

val read_words : string -> (int option * int) list
(** Raw directives from a file: [(Some addr, _)] repositions, [(None, w)]
    stores word [w] at the running position. Mostly internal; prefer
    {!load_into}. *)

val load_into : Operators.Memory.t -> string -> unit
(** Load a file into a memory (values truncated to the memory width). *)

val save : Operators.Memory.t -> string -> unit
(** Write every word, one per line, with a header comment. *)

val write_words : string -> int list -> unit
(** Write a stimulus file from a word list. *)

val load_list : string -> int list
(** Flatten a file into a word list, honouring [@addr] (gaps fill with
    0). *)
