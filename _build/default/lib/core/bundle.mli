(** Design bundles: a complete implementation as XML files on disk.

    The infrastructure's inputs are the three XML dialects, not the
    compiler that produced them: a bundle directory holds one RTG document
    plus one [<ref>.xml] per datapath/FSM it references, and can be
    simulated without any source program — e.g. artifacts written by
    {!Flow.emit_all}, by another compiler, or by hand. *)

type t = {
  rtg : Rtg.t;
  datapaths : (string * Netlist.Datapath.t) list;  (** Keyed by document name. *)
  fsms : (string * Fsmkit.Fsm.t) list;
}

val save : dir:string -> Compiler.Compile.t -> unit
(** Write [<rtg-name>_rtg.xml] and every referenced datapath/FSM document
    into [dir] (creating it if needed). A subset of {!Flow.emit_all}. *)

val load : dir:string -> t
(** Find the single [*_rtg.xml] in [dir], then load every referenced
    [<ref>.xml]. Validates all documents. Raises [Failure] when the RTG is
    missing/ambiguous or a referenced document is absent. *)

val simulate :
  ?clock_period:int ->
  ?max_cycles:int ->
  memories:(string -> Operators.Memory.t) ->
  t ->
  Simulate.rtg_run
(** Run the bundle's configurations in RTG order over shared memories. *)

val memories_of_bundle : t -> (string * int * int) list
(** Every memory name the bundle's SRAM/ROM operators reference, with
    (size, width) — what a caller must provide to {!simulate}. Sorted,
    duplicates merged; raises [Failure] on conflicting declarations. *)
