module Dp = Netlist.Datapath
module Fsm = Fsmkit.Fsm
module Opspec = Operators.Opspec
module Compile = Compiler.Compile

type t = {
  rtg : Rtg.t;
  datapaths : (string * Dp.t) list;
  fsms : (string * Fsm.t) list;
}

let ensure_dir dir = if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let save ~dir (compiled : Compile.t) =
  ensure_dir dir;
  let rtg = compiled.Compile.rtg in
  Rtg.save (Filename.concat dir (rtg.Rtg.rtg_name ^ "_rtg.xml")) rtg;
  List.iter
    (fun (p : Compile.partition) ->
      Dp.save
        (Filename.concat dir (p.Compile.datapath.Dp.dp_name ^ ".xml"))
        p.Compile.datapath;
      Fsm.save
        (Filename.concat dir (p.Compile.fsm.Fsm.fsm_name ^ ".xml"))
        p.Compile.fsm)
    compiled.Compile.partitions

let load ~dir =
  let entries = Array.to_list (Sys.readdir dir) in
  let rtg_files =
    List.filter (fun f -> Filename.check_suffix f "_rtg.xml") entries
  in
  let rtg_file =
    match rtg_files with
    | [ f ] -> f
    | [] -> failwith (Printf.sprintf "bundle %s: no *_rtg.xml found" dir)
    | _ -> failwith (Printf.sprintf "bundle %s: several *_rtg.xml files" dir)
  in
  let rtg = Rtg.load (Filename.concat dir rtg_file) in
  Rtg.validate rtg;
  let doc ref_name =
    let path = Filename.concat dir (ref_name ^ ".xml") in
    if not (Sys.file_exists path) then
      failwith
        (Printf.sprintf "bundle %s: missing document %s.xml (referenced by %s)"
           dir ref_name rtg_file);
    path
  in
  let datapaths =
    List.map
      (fun (c : Rtg.configuration) ->
        let dp = Dp.load (doc c.Rtg.datapath_ref) in
        Dp.validate dp;
        (c.Rtg.datapath_ref, dp))
      rtg.Rtg.configurations
  in
  let fsms =
    List.map
      (fun (c : Rtg.configuration) ->
        let fsm = Fsm.load (doc c.Rtg.fsm_ref) in
        Fsm.validate fsm;
        (c.Rtg.fsm_ref, fsm))
      rtg.Rtg.configurations
  in
  { rtg; datapaths; fsms }

let simulate ?clock_period ?max_cycles ~memories bundle =
  Simulate.run_rtg ?clock_period ?max_cycles ~memories
    ~datapaths:bundle.datapaths ~fsms:bundle.fsms bundle.rtg

let memories_of_bundle bundle =
  let found : (string, int * int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (_, (dp : Dp.t)) ->
      List.iter
        (fun (op : Dp.operator) ->
          match op.Dp.kind with
          | "sram" | "rom" -> (
              let name = Opspec.require_string op.Dp.params ~kind:op.Dp.kind "memory" in
              let size = Opspec.param_int op.Dp.params "size" ~default:0 in
              let decl = (size, op.Dp.width) in
              match Hashtbl.find_opt found name with
              | None -> Hashtbl.replace found name decl
              | Some existing when existing = decl -> ()
              | Some (s, w) ->
                  failwith
                    (Printf.sprintf
                       "bundle: memory %S declared as %dx%d and as %dx%d" name
                       s w size op.Dp.width))
          | _ -> ())
        dp.Dp.operators)
    bundle.datapaths;
  Hashtbl.fold (fun name (size, width) acc -> (name, size, width) :: acc) found []
  |> List.sort compare
