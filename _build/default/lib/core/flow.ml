module Compile = Compiler.Compile

type artifact = { path : string; description : string }

type translation = {
  source_kind : string;
  target_kind : string;
  tool : string;
}

let translations =
  [
    { source_kind = "datapath.xml"; target_kind = "datapath.hds"; tool = "to sim" };
    { source_kind = "datapath.xml"; target_kind = "datapath.dot"; tool = "to dotty" };
    { source_kind = "datapath.xml"; target_kind = "datapath.v"; tool = "to verilog" };
    { source_kind = "datapath.xml"; target_kind = "datapath.vhd"; tool = "to vhdl" };
    { source_kind = "datapath.xml"; target_kind = "datapath.cpp"; tool = "to systemc" };
    { source_kind = "fsm.xml"; target_kind = "fsm.ml"; tool = "to code" };
    { source_kind = "fsm.xml"; target_kind = "fsm.dot"; tool = "to dotty" };
    { source_kind = "fsm.xml"; target_kind = "fsm.v"; tool = "to verilog" };
    { source_kind = "fsm.xml"; target_kind = "fsm.vhd"; tool = "to vhdl" };
    { source_kind = "fsm.xml"; target_kind = "fsm.cpp"; tool = "to systemc" };
    { source_kind = "rtg.xml"; target_kind = "rtg.ml"; tool = "to code" };
    { source_kind = "rtg.xml"; target_kind = "rtg.dot"; tool = "to dotty" };
  ]

let write_text path text =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc text)

let ensure_dir dir = if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let emit_all ~dir (compiled : Compile.t) =
  ensure_dir dir;
  let artifacts = ref [] in
  let emit path description writer =
    writer (Filename.concat dir path);
    artifacts := { path; description } :: !artifacts
  in
  List.iter
    (fun (p : Compile.partition) ->
      let dp = p.Compile.datapath and fsm = p.Compile.fsm in
      let base = dp.Netlist.Datapath.dp_name in
      let fsm_base = fsm.Fsmkit.Fsm.fsm_name in
      emit (base ^ ".xml") "datapath XML" (fun path ->
          Netlist.Datapath.save path dp);
      emit (base ^ ".dot") "datapath graph" (fun path ->
          Dotkit.Dot.save path (Transform.To_dot.datapath dp));
      emit (base ^ ".v") "datapath Verilog" (fun path ->
          write_text path (Hdl.Verilog.datapath dp));
      emit (base ^ ".vhd") "datapath VHDL" (fun path ->
          write_text path (Hdl.Vhdl.datapath dp));
      emit (base ^ ".cpp") "datapath SystemC" (fun path ->
          write_text path (Hdl.Systemc.datapath dp));
      emit (fsm_base ^ ".xml") "FSM XML" (fun path -> Fsmkit.Fsm.save path fsm);
      emit (fsm_base ^ ".dot") "FSM graph" (fun path ->
          Dotkit.Dot.save path (Transform.To_dot.fsm fsm));
      emit (fsm_base ^ ".ml") "generated controller code" (fun path ->
          write_text path (Transform.Codegen.fsm fsm));
      emit (fsm_base ^ ".v") "FSM Verilog" (fun path ->
          write_text path (Hdl.Verilog.fsm fsm));
      emit (fsm_base ^ ".vhd") "FSM VHDL" (fun path ->
          write_text path (Hdl.Vhdl.fsm fsm));
      emit (fsm_base ^ ".cpp") "FSM SystemC" (fun path ->
          write_text path (Hdl.Systemc.fsm fsm)))
    compiled.Compile.partitions;
  let rtg = compiled.Compile.rtg in
  let rtg_base = rtg.Rtg.rtg_name ^ "_rtg" in
  let emit_rtg () =
    emit (rtg_base ^ ".xml") "RTG XML" (fun path -> Rtg.save path rtg);
    emit (rtg_base ^ ".dot") "RTG graph" (fun path ->
        Dotkit.Dot.save path (Transform.To_dot.rtg rtg));
    emit (rtg_base ^ ".ml") "generated sequencer code" (fun path ->
        write_text path (Transform.Codegen.rtg rtg))
  in
  emit_rtg ();
  List.rev !artifacts

let infrastructure_diagram () =
  let g =
    Dotkit.Dot.create "test_infrastructure"
      ~graph_attrs:[ ("rankdir", "TB"); ("fontname", "Helvetica") ]
      ~node_defaults:[ ("fontname", "Helvetica"); ("fontsize", "10") ]
  in
  let doc id label =
    Dotkit.Dot.add_node g id ~attrs:[ ("shape", "note"); ("label", label) ]
  in
  let tool id label =
    Dotkit.Dot.add_node g id ~attrs:[ ("shape", "box"); ("label", label) ]
  in
  tool "compiler" "high-level compiler\n(lang + compiler libs)";
  List.iter
    (fun kind ->
      doc kind kind;
      Dotkit.Dot.add_edge g "compiler" kind)
    [ "datapath.xml"; "fsm.xml"; "rtg.xml" ];
  List.iter
    (fun { source_kind; target_kind; tool = tname } ->
      let tid = Printf.sprintf "%s->%s" source_kind target_kind in
      tool tid tname;
      doc target_kind target_kind;
      Dotkit.Dot.add_edge g source_kind tid;
      Dotkit.Dot.add_edge g tid target_kind)
    translations;
  tool "engine" "event-driven simulator\n(sim lib + operator library)";
  Dotkit.Dot.add_edge g "datapath.hds" "engine";
  Dotkit.Dot.add_edge g "fsm.ml" "engine";
  Dotkit.Dot.add_edge g "rtg.ml" "engine";
  doc "iodata" "I/O data\n(RAMs and stimulus files)";
  Dotkit.Dot.add_edge g "iodata" "engine";
  tool "golden" "input algorithm\n(golden interpreter)";
  Dotkit.Dot.add_edge g "iodata" "golden";
  tool "comparison" "memory comparison\n(verify)";
  Dotkit.Dot.add_edge g "engine" "comparison";
  Dotkit.Dot.add_edge g "golden" "comparison";
  g
