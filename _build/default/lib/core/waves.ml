let column_width = 8

let render_samples ?(max_events = 24) traces =
  (* The column axis: the earliest [max_events] distinct change times. *)
  let times =
    List.concat_map (fun (_, samples) -> List.map fst samples) traces
    |> List.sort_uniq compare
    |> List.filteri (fun i _ -> i < max_events)
  in
  let name_width =
    List.fold_left (fun acc (n, _) -> max acc (String.length n)) 4 traces
  in
  let pad_name n = Printf.sprintf "%-*s  " name_width n in
  let cell s =
    let s = if String.length s > column_width then String.sub s 0 column_width else s in
    s ^ String.make (column_width - String.length s) ' '
  in
  let buf = Buffer.create 512 in
  (* Time ruler. *)
  Buffer.add_string buf (pad_name "time");
  List.iter (fun t -> Buffer.add_string buf (cell (string_of_int t))) times;
  Buffer.add_char buf '\n';
  List.iter
    (fun (name, samples) ->
      Buffer.add_string buf (pad_name name);
      let value_at t =
        (* Last sample at or before t. *)
        List.fold_left
          (fun acc (st, v) -> if st <= t then Some v else acc)
          None samples
      in
      let previous = ref None in
      List.iter
        (fun t ->
          let v = value_at t in
          let text =
            match v with
            | None -> cell ""
            | Some v when Bitvec.width v = 1 ->
                String.make column_width
                  (if Bitvec.to_bool v then '#' else '_')
            | Some v ->
                let changed =
                  match !previous with
                  | Some p -> not (Bitvec.equal p v)
                  | None -> true
                in
                if changed then
                  cell ("|" ^ string_of_int (Bitvec.to_int v))
                else cell ""
          in
          previous := v;
          Buffer.add_string buf text)
        times;
      Buffer.add_char buf '\n')
    traces;
  Buffer.contents buf

let render ?max_events probes =
  render_samples ?max_events
    (List.map
       (fun (name, probe) ->
         ( name,
           List.map
             (fun (s : Sim.Probe.sample) -> (s.Sim.Probe.time, s.Sim.Probe.value))
             (Sim.Probe.samples probe) ))
       probes)
