module Memory = Operators.Memory

exception Format_error of { line : int; message : string }

let fail line fmt =
  Format.kasprintf (fun message -> raise (Format_error { line; message })) fmt

let parse_word line text =
  match int_of_string_opt text with
  | Some v -> v
  | None -> fail line "bad word %S" text

let read_words path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let out = ref [] in
      let lineno = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           let text =
             match String.index_opt line '#' with
             | Some i -> String.sub line 0 i
             | None -> line
           in
           let text = String.trim text in
           if text <> "" then
             if text.[0] = '@' then
               let addr =
                 parse_word !lineno
                   (String.sub text 1 (String.length text - 1))
               in
               out := (Some addr, 0) :: !out
             else out := (None, parse_word !lineno text) :: !out
         done
       with End_of_file -> ());
      List.rev !out)

let load_into memory path =
  let pos = ref 0 in
  List.iter
    (function
      | Some addr, _ -> pos := addr
      | None, word ->
          Memory.write memory !pos
            (Bitvec.create ~width:(Memory.width memory) word);
          incr pos)
    (read_words path)

let save memory path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "# memory %S: %d words of %d bits\n"
        (Memory.name memory) (Memory.size memory) (Memory.width memory);
      List.iter (fun w -> Printf.fprintf oc "%d\n" w) (Memory.to_list memory))

let write_words path words =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> List.iter (fun w -> Printf.fprintf oc "%d\n" w) words)

let load_list path =
  let directives = read_words path in
  let max_pos = ref 0 in
  let pos = ref 0 in
  List.iter
    (function
      | Some addr, _ -> pos := addr
      | None, _ ->
          incr pos;
          if !pos > !max_pos then max_pos := !pos)
    directives;
  let arr = Array.make !max_pos 0 in
  let pos = ref 0 in
  List.iter
    (function
      | Some addr, _ -> pos := addr
      | None, word ->
          if !pos >= 0 && !pos < Array.length arr then arr.(!pos) <- word;
          incr pos)
    directives;
  Array.to_list arr
