lib/core/verify.mli: Bitvec Compiler Lang Operators Simulate
