lib/core/suite.mli: Compiler Verify
