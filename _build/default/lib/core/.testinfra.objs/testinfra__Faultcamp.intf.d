lib/core/faultcamp.mli: Faults Suite
