lib/core/report.ml: Compiler Format Lang List Printf Sim Simulate Verify
