lib/core/metrics.ml: Compiler Faultcamp Fsmkit Lang List Netlist Printf Simulate String Transform Verify Xmlkit
