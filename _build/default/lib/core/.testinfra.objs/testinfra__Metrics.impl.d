lib/core/metrics.ml: Compiler Fsmkit Lang List Netlist Printf Simulate String Transform Verify Xmlkit
