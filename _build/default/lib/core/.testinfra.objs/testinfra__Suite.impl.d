lib/core/suite.ml: Array Buffer Compiler Filename Fun List Memfile Printexc Printf String Sys Verify Workloads
