lib/core/report.mli: Format Verify
