lib/core/flow.ml: Compiler Dotkit Filename Fsmkit Fun Hdl List Netlist Printf Rtg Sys Transform
