lib/core/faultcamp.ml: Compiler Faults Lang List Operators Printf Simulate Suite Verify Workloads
