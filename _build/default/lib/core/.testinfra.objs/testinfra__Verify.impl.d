lib/core/verify.ml: Bitvec Compiler Lang List Operators Printf Simulate Sys
