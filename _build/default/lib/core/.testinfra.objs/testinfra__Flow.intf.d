lib/core/flow.mli: Compiler Dotkit
