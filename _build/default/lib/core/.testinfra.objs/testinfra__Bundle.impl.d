lib/core/bundle.ml: Array Compiler Filename Fsmkit Hashtbl List Netlist Operators Printf Rtg Simulate Sys
