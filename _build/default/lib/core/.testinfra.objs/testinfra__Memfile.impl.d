lib/core/memfile.ml: Array Bitvec Format Fun List Operators Printf String
