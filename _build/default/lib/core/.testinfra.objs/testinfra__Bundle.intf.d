lib/core/bundle.mli: Compiler Fsmkit Netlist Operators Rtg Simulate
