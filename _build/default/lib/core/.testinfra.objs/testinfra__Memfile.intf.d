lib/core/memfile.mli: Operators
