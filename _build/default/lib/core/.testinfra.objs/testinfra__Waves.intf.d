lib/core/waves.mli: Bitvec Sim
