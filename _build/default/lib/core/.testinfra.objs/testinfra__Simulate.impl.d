lib/core/simulate.ml: Bitvec Clock Compiler Engine Fsmkit Fun List Netlist Operators Printf Rtg Sim String Sys Transform Vcd
