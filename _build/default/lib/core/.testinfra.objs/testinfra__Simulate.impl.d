lib/core/simulate.ml: Clock Compiler Engine Fsmkit List Netlist Operators Printf Rtg Sim Sys Transform Vcd
