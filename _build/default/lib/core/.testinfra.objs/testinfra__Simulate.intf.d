lib/core/simulate.mli: Compiler Fsmkit Netlist Operators Rtg Sim
