lib/core/simulate.mli: Bitvec Compiler Fsmkit Netlist Operators Rtg Sim
