lib/core/waves.ml: Bitvec Buffer List Printf Sim String
