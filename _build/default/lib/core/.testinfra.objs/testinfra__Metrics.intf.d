lib/core/metrics.mli: Verify
