lib/core/metrics.mli: Faultcamp Verify
