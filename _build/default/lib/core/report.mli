(** Human-readable rendering of verification outcomes. *)

val verification : Format.formatter -> Verify.t -> unit
(** Multi-line summary: per-configuration simulation results, memory
    comparison verdicts (with the first mismatches), and totals. *)

val verification_to_string : Verify.t -> string

val one_line : Verify.t -> string
(** ["PASS name (cycles=..., sim=...s)"] or a FAIL line with the first
    failing memory. *)
