(** ASCII waveform rendering of probe histories.

    A terminal-friendly stand-in for the GUI the paper mentions ("Java GUI
    features can be easily included"): probes recorded during simulation
    render as textual waveforms — 1-bit signals as level traces, wider
    signals as value segments. *)

val render :
  ?max_events:int -> (string * Sim.Probe.t) list -> string
(** One row per probe, one column per distinct change time across all the
    probes (the earliest [max_events] times, default 24), plus a time
    ruler. 1-bit signals draw as [____####]; wider signals print their
    (unsigned) value once per segment:
    {v
time  0       10      20
clk   ____    ####    ____
bus   0       |42     |7
    v} *)

val render_samples :
  ?max_events:int -> (string * (int * Bitvec.t) list) list -> string
(** Same, from raw [(time, value)] sample lists (e.g. the probe-operator
    notifications collected by {!Transform.Models_log.probe_samples}). *)
