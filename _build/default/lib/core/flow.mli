(** Artifact emission — the infrastructure's build step (the "ANT build"
    box of the paper's Figure 1).

    [emit_all] runs every registered translation over a compilation
    result, writing the XML documents, their dot / generated-code /
    VHDL / Verilog translations, and the RTG artifacts into a directory.
    [infrastructure_diagram] renders the flow itself — the paper's
    Figure 1 — from the same translation registry, so the diagram always
    matches the implementation. *)

type artifact = {
  path : string;  (** Relative to the output directory. *)
  description : string;
}

val emit_all : dir:string -> Compiler.Compile.t -> artifact list
(** Creates [dir] if needed. Returns the artifacts written. *)

type translation = {
  source_kind : string;  (** e.g. "datapath.xml" *)
  target_kind : string;  (** e.g. "datapath.dot" *)
  tool : string;  (** e.g. "to dotty" *)
}

val translations : translation list
(** The registered translation rules (XML dialect -> artifact kind). *)

val infrastructure_diagram : unit -> Dotkit.Dot.t
(** Figure 1: compiler outputs, translation rules, simulator, I/O files
    and verification, generated from {!translations}. *)
