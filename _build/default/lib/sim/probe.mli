(** Value probes over signals.

    Probes give the "access to values on certain connections" the paper
    lists among testing requirements: they record a bounded history of
    value changes with timestamps, and can assert expectations. *)

type sample = { time : int; value : Bitvec.t }

type t

val attach : Engine.t -> ?limit:int -> Engine.signal -> t
(** Record every value change of the signal (plus its value at attach
    time). [limit] bounds history length (default unlimited); older samples
    are dropped first. *)

val signal : t -> Engine.signal
val samples : t -> sample list
(** Oldest first. *)

val last : t -> sample
(** Latest sample (at least the attach-time one exists). *)

val changes : t -> int
(** Number of value changes observed (excludes the attach-time sample). *)

val values_seen : t -> Bitvec.t list
(** Distinct values in order of first appearance. *)
