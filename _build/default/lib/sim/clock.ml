type t = {
  signal : Engine.signal;
  period : int;
  mutable edges : int;
}

let create engine ?(name = "clk") ?(period = 10) ?(start_low = true) () =
  if period <= 0 || period mod 2 <> 0 then
    invalid_arg "Clock.create: period must be positive and even";
  let initial = Bitvec.of_bool (not start_low) in
  let signal = Engine.signal engine ~name ~initial 1 in
  let clk = { signal; period; edges = 0 } in
  let half = period / 2 in
  (* The elaboration pass runs every process once at creation time; that
     first activation must only arm the generator, not toggle, so the
     first edge lands at [half]. *)
  let first = ref true in
  let rec toggle =
    lazy
      (Engine.process engine ~name:(name ^ "-gen") (fun () ->
           if !first then first := false
           else begin
             let next = Bitvec.lognot (Engine.value signal) in
             if Bitvec.to_bool next then clk.edges <- clk.edges + 1;
             Engine.drive engine signal next
           end;
           Engine.wake_at engine (Lazy.force toggle) ~delay:half))
  in
  let (_ : Engine.process) = Lazy.force toggle in
  clk

let signal clk = clk.signal
let period clk = clk.period
let cycles clk n = clk.period * n
let rising_edges_seen clk = clk.edges

let reset_pulse engine ?(name = "reset") ~duration () =
  let signal = Engine.signal engine ~name ~initial:(Bitvec.one 1) 1 in
  let p =
    Engine.process engine ~name:(name ^ "-gen") (fun () ->
        if Engine.now engine >= duration then
          Engine.drive engine signal (Bitvec.zero 1))
  in
  Engine.wake_at engine p ~delay:duration;
  signal
