(* Array-backed binary heap ordered by (time, seq). The sequence number
   makes ordering total and FIFO among equal times. *)

type 'a entry = { time : int; seq : int; payload : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { data = [||]; len = 0; next_seq = 0 }
let is_empty h = h.len = 0
let size h = h.len

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow h entry =
  let cap = Array.length h.data in
  if h.len = cap then begin
    let data = Array.make (max 16 (2 * cap)) entry in
    Array.blit h.data 0 data 0 h.len;
    h.data <- data
  end

let push h ~time payload =
  let entry = { time; seq = h.next_seq; payload } in
  h.next_seq <- h.next_seq + 1;
  grow h entry;
  h.data.(h.len) <- entry;
  h.len <- h.len + 1;
  (* Sift up. *)
  let i = ref (h.len - 1) in
  while !i > 0 && less h.data.(!i) h.data.((!i - 1) / 2) do
    let parent = (!i - 1) / 2 in
    let tmp = h.data.(parent) in
    h.data.(parent) <- h.data.(!i);
    h.data.(!i) <- tmp;
    i := parent
  done

let min_time h = if h.len = 0 then None else Some h.data.(0).time

let sift_down h =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < h.len && less h.data.(l) h.data.(!smallest) then smallest := l;
    if r < h.len && less h.data.(r) h.data.(!smallest) then smallest := r;
    if !smallest = !i then continue := false
    else begin
      let tmp = h.data.(!smallest) in
      h.data.(!smallest) <- h.data.(!i);
      h.data.(!i) <- tmp;
      i := !smallest
    end
  done

let pop h =
  if h.len = 0 then None
  else begin
    let top = h.data.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.data.(0) <- h.data.(h.len);
      sift_down h
    end;
    Some (top.time, top.payload)
  end

let pop_at h t =
  let rec loop acc =
    match min_time h with
    | Some time when time = t -> (
        match pop h with
        | Some (_, payload) -> loop (payload :: acc)
        | None -> acc)
    | Some _ | None -> acc
  in
  List.rev (loop [])
