type sample = { time : int; value : Bitvec.t }

type t = {
  sig_ : Engine.signal;
  limit : int option;
  mutable history : sample list;  (* newest first *)
  mutable count : int;
  mutable n_changes : int;
}

let push p sample =
  p.history <- sample :: p.history;
  p.count <- p.count + 1;
  match p.limit with
  | Some limit when p.count > limit ->
      (* Drop the oldest sample; histories are short-lived so the
         occasional O(n) trim is acceptable. *)
      p.history <- List.filteri (fun i _ -> i < limit) p.history;
      p.count <- limit
  | Some _ | None -> ()

let attach engine ?limit s =
  let p = { sig_ = s; limit; history = []; count = 0; n_changes = 0 } in
  push p { time = Engine.now engine; value = Engine.value s };
  Engine.on_change engine s (fun () ->
      p.n_changes <- p.n_changes + 1;
      push p { time = Engine.now engine; value = Engine.value s });
  p

let signal p = p.sig_
let samples p = List.rev p.history

let last p =
  match p.history with
  | newest :: _ -> newest
  | [] -> assert false (* attach always records one sample *)

let changes p = p.n_changes

let values_seen p =
  List.fold_left
    (fun acc s -> if List.exists (Bitvec.equal s.value) acc then acc else s.value :: acc)
    [] (samples p)
  |> List.rev
