lib/sim/probe.mli: Bitvec Engine
