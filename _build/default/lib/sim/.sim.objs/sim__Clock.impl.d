lib/sim/clock.ml: Bitvec Engine Lazy
