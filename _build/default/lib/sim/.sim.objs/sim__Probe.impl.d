lib/sim/probe.ml: Bitvec Engine List
