lib/sim/engine.mli: Bitvec Format
