lib/sim/engine.ml: Bitvec Event_heap Format List Printf String
