(** Event-driven simulation kernel.

    The engine plays the role Hades plays in the paper: a discrete-event
    simulator whose components are behavioral host-language closures.

    Semantics, in VHDL-like terms:
    - signals carry {!Bitvec.t} values and have a set of sensitive
      processes;
    - {!drive} schedules a transport-delay assignment; a zero [delay]
      lands in the next {e delta cycle} of the current time point;
    - at each time point, pending assignments are applied as a batch, the
      processes sensitive to any {e changed} signal run exactly once, and
      the resulting zero-delay assignments open the next delta cycle;
    - the time point ends when a delta produces no further activity.

    Determinism: processes run in creation order within a delta; multiple
    drives to the same signal within one delta take the last write (a
    diagnostic counter records such collisions). *)

type t
(** A simulation engine instance. *)

type signal
type process

exception Combinational_loop of string
(** Raised when one time point exceeds the delta-cycle bound. *)

exception Drive_conflict of string
(** Raised on multi-driver collisions when the engine was created with
    [~strict_drivers:true]. *)

type stop_reason =
  | Finished  (** The event queue drained. *)
  | Stop_requested of string  (** A component called {!request_stop}. *)
  | Max_time_reached
  | Max_events_reached

val create : ?strict_drivers:bool -> ?max_deltas:int -> unit -> t
(** [max_deltas] bounds delta cycles per time point (default 10_000). *)

val now : t -> int
(** Current simulation time (abstract ticks; the flows use 1 tick = 1 ns). *)

(** {1 Signals} *)

val signal : t -> name:string -> ?initial:Bitvec.t -> int -> signal
(** [signal t ~name width] creates a signal; initial value defaults to 0. *)

val name : signal -> string
val width : signal -> int
val value : signal -> Bitvec.t
val value_int : signal -> int

val drive : t -> signal -> ?delay:int -> Bitvec.t -> unit
(** Schedule an assignment after [delay] ticks (default 0 = next delta).
    Raises [Invalid_argument] on negative delay or width mismatch. *)

val force : t -> signal -> Bitvec.t -> unit
(** Immediately overwrite a signal value {e without} waking processes.
    For initialization before {!run} only. *)

val on_change : t -> signal -> (unit -> unit) -> unit
(** Register a callback invoked (after processes are woken) whenever the
    signal's value changes. Used by probes and the VCD tracer. *)

val corrupt_signal : t -> signal -> (Bitvec.t -> Bitvec.t) -> unit
(** Fault injection: apply [f] to every value committed to the signal
    (drives, delayed assignments and {!force}), and to its current value
    immediately. Used by the mutation-campaign infrastructure to model
    stuck-at and bit-flip hardware defects. [f] must preserve the width;
    a later call replaces the previous transform. *)

val clear_corruption : signal -> unit
(** Remove a {!corrupt_signal} transform (already-committed values keep
    their corrupted state). *)

(** {1 Processes} *)

val process : t -> name:string -> ?sensitivity:signal list -> (unit -> unit) -> process
(** Create a process woken by changes of its sensitivity signals. The body
    runs once at time 0 (initialization pass) before any event. *)

val add_sensitivity : process -> signal -> unit
val wake_at : t -> process -> delay:int -> unit
(** Schedule an explicit activation after [delay] ticks, independent of
    sensitivity (timed processes, clock generators). *)

val on_rising_edge : t -> clock:signal -> name:string -> (unit -> unit) -> process
(** Convenience: a process that runs [f] only on 0→1 transitions of
    [clock]. *)

(** {1 Control} *)

val request_stop : t -> string -> unit
(** Ask the engine to stop once the current time point has settled (its
    remaining delta cycles still run, so staged assignments apply). *)

val run : ?max_time:int -> ?max_events:int -> t -> stop_reason
(** Run until the queue drains, a stop is requested, or a bound trips.
    Can be called again to resume after a stop. *)

val run_for : t -> int -> stop_reason
(** [run_for t d] runs at most [d] ticks past the current time. *)

(** {1 Statistics} *)

type stats = {
  events : int;  (** signal-assignment events applied *)
  activations : int;  (** process executions *)
  deltas : int;  (** delta cycles executed *)
  time_points : int;  (** distinct simulation times visited *)
  drive_collisions : int;  (** same-delta multiple writes to one signal *)
}

val stats : t -> stats
val pp_stop_reason : Format.formatter -> stop_reason -> unit
