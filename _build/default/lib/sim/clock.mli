(** Clock and reset generators. *)

type t
(** A free-running clock generator. *)

val signal : t -> Engine.signal
(** The generated 1-bit clock signal. *)

val period : t -> int

val create : Engine.t -> ?name:string -> ?period:int -> ?start_low:bool -> unit -> t
(** A free-running clock. [period] (default 10 ticks) must be an even
    positive number; the clock toggles every [period/2]. The first edge
    occurs at [period/2] after the current time. *)

val cycles : t -> int -> int
(** [cycles clk n] is the duration of [n] full periods. *)

val rising_edges_seen : t -> int
(** Number of 0→1 transitions generated so far. *)

val reset_pulse : Engine.t -> ?name:string -> duration:int -> unit -> Engine.signal
(** A 1-bit signal that is 1 from time 0 and falls to 0 after [duration]
    ticks. *)
