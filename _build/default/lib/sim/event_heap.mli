(** Binary min-heap of timed events.

    Events popped in nondecreasing time order; ties break by insertion
    order (FIFO), which keeps simulation deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> time:int -> 'a -> unit

val min_time : 'a t -> int option
(** Time of the earliest event, if any. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the earliest event as [(time, payload)]. *)

val pop_at : 'a t -> int -> 'a list
(** [pop_at h t] removes and returns (in FIFO order) every event scheduled
    exactly at time [t]. *)
