module Dp = Netlist.Datapath
module Fsm = Fsmkit.Fsm
module Guard = Fsmkit.Guard
module Opspec = Operators.Opspec
module Memory = Operators.Memory

exception Combinational_cycle of string

type t = {
  fsm : Fsm.t;
  cells : (string, Bitvec.t ref) Hashtbl.t;  (* "inst.port" / "ctl.name" *)
  comb : (unit -> unit) array;  (* evaluation closures, topo order *)
  latch : (unit -> unit) array;  (* phase 1: compute pending values *)
  commit : (unit -> unit) array;  (* phase 2: apply pending values *)
  statuses : (string * Bitvec.t ref) list;
  controls : (string * Bitvec.t ref) list;
  mutable state : Fsm.state;
  mutable n_cycles : int;
  mutable n_check_failures : int;
  mutable stop_fired : bool;
}

let binary_fn = function
  | "add" -> Bitvec.add
  | "sub" -> Bitvec.sub
  | "mul" -> Bitvec.mul
  | "divu" -> Bitvec.udiv
  | "divs" -> Bitvec.sdiv
  | "remu" -> Bitvec.urem
  | "rems" -> Bitvec.srem
  | "and" -> Bitvec.logand
  | "or" -> Bitvec.logor
  | "xor" -> Bitvec.logxor
  | "shl" -> fun a b -> Bitvec.shift_left a (Bitvec.to_int b)
  | "shrl" -> fun a b -> Bitvec.shift_right_logical a (Bitvec.to_int b)
  | "shra" -> fun a b -> Bitvec.shift_right_arith a (Bitvec.to_int b)
  | "eq" -> Bitvec.eq
  | "ne" -> Bitvec.ne
  | "ltu" -> Bitvec.ult
  | "leu" -> Bitvec.ule
  | "gtu" -> Bitvec.ugt
  | "geu" -> Bitvec.uge
  | "lts" -> Bitvec.slt
  | "les" -> Bitvec.sle
  | "gts" -> Bitvec.sgt
  | "ges" -> Bitvec.sge
  | "minu" -> fun a b -> if Bitvec.to_int a <= Bitvec.to_int b then a else b
  | "maxu" -> fun a b -> if Bitvec.to_int a >= Bitvec.to_int b then a else b
  | "mins" -> fun a b -> if Bitvec.to_signed a <= Bitvec.to_signed b then a else b
  | "maxs" -> fun a b -> if Bitvec.to_signed a >= Bitvec.to_signed b then a else b
  | kind -> Opspec.failf "cyclesim: no binary function for %S" kind

let create ?(corrupt = fun _ -> None) ~memories (dp : Dp.t) (fsm : Fsm.t) =
  Dp.validate dp;
  Fsm.validate fsm;
  let cells : (string, Bitvec.t ref) Hashtbl.t = Hashtbl.create 128 in
  let cell key width =
    match Hashtbl.find_opt cells key with
    | Some c -> c
    | None ->
        let c = ref (Bitvec.zero width) in
        Hashtbl.replace cells key c;
        c
  in
  (* Output-port and control cells. *)
  List.iter
    (fun (op : Dp.operator) ->
      List.iter
        (fun (p : Opspec.port) ->
          if p.Opspec.direction = Opspec.Out then
            ignore (cell (op.Dp.id ^ "." ^ p.Opspec.port_name) p.Opspec.port_width))
        (Dp.operator_spec op).Opspec.ports)
    dp.Dp.operators;
  let controls =
    List.map
      (fun (c : Dp.control) ->
        (c.Dp.ctl_name, cell ("ctl." ^ c.Dp.ctl_name) c.Dp.ctl_width))
      dp.Dp.controls
  in
  (* Input port -> driving cell (plus the driving instance for the
     dependency graph). *)
  let driver : (string, string) Hashtbl.t = Hashtbl.create 128 in
  List.iter
    (fun (n : Dp.net) ->
      let src =
        match n.Dp.source with
        | Dp.From_op ep -> Dp.endpoint_to_string ep
        | Dp.From_control name -> "ctl." ^ name
      in
      List.iter
        (fun ep -> Hashtbl.replace driver (Dp.endpoint_to_string ep) src)
        n.Dp.sinks)
    dp.Dp.nets;
  let input_cell op port =
    let key = op.Dp.id ^ "." ^ port in
    match Hashtbl.find_opt driver key with
    | Some src -> Hashtbl.find cells src
    | None -> failwith ("cyclesim: unconnected input " ^ key)
  in
  let input_driver_inst op port =
    (* The instance producing the value feeding [op.port], if any. *)
    match Hashtbl.find_opt driver (op.Dp.id ^ "." ^ port) with
    | Some src when not (String.length src >= 4 && String.sub src 0 4 = "ctl.") ->
        Some (Dp.endpoint_of_string src).Dp.inst
    | Some _ | None -> None
  in
  (* Classify operators. Combinational units are topologically sorted by
     "produces a value consumed by"; sequential outputs (reg/counter q)
     break the dependency chains. The sram read path is combinational. *)
  let is_comb (op : Dp.operator) =
    match op.Dp.kind with
    | "reg" | "counter" | "check" | "stop" | "probe" -> false
    | _ -> true
  in
  let comb_ops = List.filter is_comb dp.Dp.operators in
  let comb_ids = List.map (fun (op : Dp.operator) -> op.Dp.id) comb_ops in
  let spec_of (op : Dp.operator) = Dp.operator_spec op in
  let comb_deps (op : Dp.operator) =
    (* Combinational predecessors among comb instances. Sequential q
       outputs and sram dout are state-like... no: sram dout is produced
       by a comb unit (the sram read), so it IS a dependency. Register
       and counter outputs are state and excluded. *)
    List.filter_map
      (fun (p : Opspec.port) ->
        if p.Opspec.direction = Opspec.In then
          match input_driver_inst op p.Opspec.port_name with
          | Some inst when List.mem inst comb_ids -> Some inst
          | Some _ | None -> None
        else None)
      (spec_of op).Opspec.ports
  in
  (* Kahn's algorithm. *)
  let order =
    let indeg = Hashtbl.create 64 in
    let succs = Hashtbl.create 64 in
    List.iter (fun id -> Hashtbl.replace indeg id 0) comb_ids;
    List.iter
      (fun (op : Dp.operator) ->
        List.iter
          (fun dep ->
            if dep <> op.Dp.id then begin
              Hashtbl.replace succs dep
                (op.Dp.id :: Option.value ~default:[] (Hashtbl.find_opt succs dep));
              Hashtbl.replace indeg op.Dp.id
                (1 + Option.value ~default:0 (Hashtbl.find_opt indeg op.Dp.id))
            end)
          (List.sort_uniq compare (comb_deps op)))
      comb_ops;
    let ready =
      ref (List.filter (fun id -> Hashtbl.find indeg id = 0) comb_ids)
    in
    let out = ref [] in
    while !ready <> [] do
      match !ready with
      | [] -> ()
      | id :: rest ->
          ready := rest;
          out := id :: !out;
          List.iter
            (fun s ->
              let d = Hashtbl.find indeg s - 1 in
              Hashtbl.replace indeg s d;
              if d = 0 then ready := s :: !ready)
            (Option.value ~default:[] (Hashtbl.find_opt succs id))
    done;
    let sorted = List.rev !out in
    if List.length sorted <> List.length comb_ids then begin
      let stuck =
        List.filter (fun id -> not (List.mem id sorted)) comb_ids
      in
      raise
        (Combinational_cycle
           (Printf.sprintf "combinational cycle through: %s"
              (String.concat ", "
                 (List.filteri (fun i _ -> i < 6) stuck))))
    end;
    sorted
  in
  let op_by_id id = Option.get (Dp.find_operator dp id) in
  (* Evaluation closure per combinational unit. *)
  let eval_of id =
    let op = op_by_id id in
    let out port = Hashtbl.find cells (op.Dp.id ^ "." ^ port) in
    let width = op.Dp.width in
    match op.Dp.kind with
    | "const" ->
        let v =
          Bitvec.create ~width (Opspec.require_int op.Dp.params ~kind:"const" "value")
        in
        let y = out "y" in
        fun () -> y := v
    | "zext" ->
        let a = input_cell op "a" and y = out "y" in
        fun () -> y := Bitvec.resize !a width
    | "sext" ->
        let a = input_cell op "a" and y = out "y" in
        fun () -> y := Bitvec.sresize !a width
    | "not" ->
        let a = input_cell op "a" and y = out "y" in
        fun () -> y := Bitvec.lognot !a
    | "neg" ->
        let a = input_cell op "a" and y = out "y" in
        fun () -> y := Bitvec.neg !a
    | "pass" ->
        let a = input_cell op "a" and y = out "y" in
        fun () -> y := !a
    | "abs" ->
        let a = input_cell op "a" and y = out "y" in
        fun () -> y := (if Bitvec.msb !a then Bitvec.neg !a else !a)
    | "mux" ->
        let n = Opspec.param_int op.Dp.params "inputs" ~default:2 in
        let ins = Array.init n (fun i -> input_cell op (Printf.sprintf "in%d" i)) in
        let sel = input_cell op "sel" and y = out "y" in
        fun () -> y := !(ins.(min (Bitvec.to_int !sel) (n - 1)))
    | "sram" | "rom" ->
        let memory =
          memories (Opspec.require_string op.Dp.params ~kind:op.Dp.kind "memory")
        in
        let addr = input_cell op "addr" and dout = out "dout" in
        fun () -> dout := Memory.read memory (Bitvec.to_int !addr)
    | kind ->
        let f = binary_fn kind in
        let a = input_cell op "a" and b = input_cell op "b" and y = out "y" in
        fun () -> y := f !a !b
  in
  (* Fault injection: corrupt a unit's output cell right after it
     evaluates, so downstream units (later in topo order) consume the
     corrupted value — the same commit-point the event kernel corrupts. *)
  let wrap_output id base =
    let op = op_by_id id in
    let out_port =
      match op.Dp.kind with "sram" | "rom" -> "dout" | _ -> "y"
    in
    let key = op.Dp.id ^ "." ^ out_port in
    match corrupt key with
    | None -> base
    | Some f ->
        let cell = Hashtbl.find cells key in
        fun () ->
          base ();
          cell := f !cell
  in
  let comb = Array.of_list (List.map (fun id -> wrap_output id (eval_of id)) order) in
  (* Sequential elements: two-phase latch. *)
  let latches = ref [] and commits = ref [] in
  let t_ref = ref None in
  List.iter
    (fun (op : Dp.operator) ->
      let out port = Hashtbl.find cells (op.Dp.id ^ "." ^ port) in
      (* Same commit-point corruption for the state-holding outputs. *)
      let corrupt_q = corrupt (op.Dp.id ^ ".q") in
      let commit_q q pending =
        match corrupt_q with
        | None -> fun () -> q := !pending
        | Some f -> fun () -> q := f !pending
      in
      match op.Dp.kind with
      | "reg" ->
          let d = input_cell op "d" and en = input_cell op "en" in
          let q = out "q" in
          q := Bitvec.create ~width:op.Dp.width
                 (Opspec.param_int op.Dp.params "init" ~default:0);
          (match corrupt_q with Some f -> q := f !q | None -> ());
          let pending = ref !q in
          latches :=
            (fun () -> pending := (if Bitvec.to_bool !en then !d else !q))
            :: !latches;
          commits := commit_q q pending :: !commits
      | "counter" ->
          let en = input_cell op "en"
          and load = input_cell op "load"
          and d = input_cell op "d" in
          let q = out "q" in
          (match corrupt_q with Some f -> q := f !q | None -> ());
          let step =
            Bitvec.create ~width:op.Dp.width
              (Opspec.param_int op.Dp.params "step" ~default:1)
          in
          let pending = ref !q in
          latches :=
            (fun () ->
              pending :=
                (if Bitvec.to_bool !load then !d
                 else if Bitvec.to_bool !en then Bitvec.add !q step
                 else !q))
            :: !latches;
          commits := commit_q q pending :: !commits
      | "sram" ->
          let memory =
            memories (Opspec.require_string op.Dp.params ~kind:"sram" "memory")
          in
          let addr = input_cell op "addr"
          and din = input_cell op "din"
          and we = input_cell op "we" in
          (* Memory writes commit after all register reads of this cycle
             already happened during the comb phase, so direct commit is
             safe. *)
          commits :=
            (fun () ->
              if Bitvec.to_bool !we then
                Memory.write memory (Bitvec.to_int !addr) !din)
            :: !commits
      | "check" ->
          let a = input_cell op "a" and en = input_cell op "en" in
          let expect =
            Bitvec.create ~width:op.Dp.width
              (Opspec.require_int op.Dp.params ~kind:"check" "value")
          in
          latches :=
            (fun () ->
              if Bitvec.to_bool !en && not (Bitvec.equal !a expect) then
                match !t_ref with
                | Some t -> t.n_check_failures <- t.n_check_failures + 1
                | None -> ())
            :: !latches
      | "stop" ->
          let en = input_cell op "en" in
          latches :=
            (fun () ->
              if Bitvec.to_bool !en then
                match !t_ref with
                | Some t -> t.stop_fired <- true
                | None -> ())
            :: !latches
      | _ -> ())
    dp.Dp.operators;
  (* FSM wiring: controls driven from the Moore decode, statuses read from
     the datapath cells. *)
  let fsm_controls =
    List.map
      (fun (o : Fsm.io) ->
        match List.assoc_opt o.Fsm.io_name controls with
        | Some c -> (o.Fsm.io_name, c, o.Fsm.io_width)
        | None ->
            failwith
              (Printf.sprintf "cyclesim: design has no control %S" o.Fsm.io_name))
      fsm.Fsm.outputs
  in
  let statuses =
    List.map
      (fun (st : Dp.status) ->
        (st.Dp.st_name, Hashtbl.find cells (Dp.endpoint_to_string st.Dp.st_source)))
      dp.Dp.statuses
  in
  List.iter
    (fun (i : Fsm.io) ->
      if not (List.mem_assoc i.Fsm.io_name statuses) then
        failwith
          (Printf.sprintf "cyclesim: design has no status %S" i.Fsm.io_name))
    fsm.Fsm.inputs;
  let initial = Option.get (Fsm.find_state fsm fsm.Fsm.initial) in
  let t =
    {
      fsm;
      cells;
      comb;
      latch = Array.of_list (List.rev !latches);
      commit = Array.of_list (List.rev !commits);
      statuses;
      controls = List.map (fun (n, c, _) -> (n, c)) fsm_controls;
      state = initial;
      n_cycles = 0;
      n_check_failures = 0;
      stop_fired = false;
    }
  in
  t_ref := Some t;
  t

let drive_controls t =
  List.iter
    (fun (name, c) ->
      let value = Fsm.output_in_state t.fsm t.state name in
      c := Bitvec.create ~width:(Bitvec.width !c) value)
    t.controls

let step t =
  t.n_cycles <- t.n_cycles + 1;
  (* Phase 1: Moore outputs of the current state + full comb settle. *)
  drive_controls t;
  Array.iter (fun f -> f ()) t.comb;
  (* Phase 2: next state from settled statuses. *)
  let lookup name =
    match List.assoc_opt name t.statuses with
    | Some c -> Bitvec.to_int !c
    | None -> failwith ("cyclesim: unknown status " ^ name)
  in
  let rec first_match = function
    | [] -> t.state
    | (tr : Fsm.transition) :: rest ->
        if Guard.eval tr.Fsm.guard lookup then
          Option.get (Fsm.find_state t.fsm tr.Fsm.target)
        else first_match rest
  in
  let next = first_match t.state.Fsm.transitions in
  (* Phase 3: latch sequential elements (reads), then commit (writes). *)
  Array.iter (fun f -> f ()) t.latch;
  Array.iter (fun f -> f ()) t.commit;
  t.state <- next

let cycles t = t.n_cycles
let current_state t = t.state.Fsm.sname
let in_done_state t = t.state.Fsm.is_done
let check_failures t = t.n_check_failures

let port_value t key =
  match Hashtbl.find_opt t.cells key with
  | Some c -> !c
  | None -> failwith ("cyclesim: unknown port " ^ key)

let run ?(max_cycles = 10_000_000) t =
  let rec go () =
    if in_done_state t then `Done
    else if t.stop_fired then `Stopped
    else if t.n_cycles >= max_cycles then `Max_cycles
    else begin
      step t;
      go ()
    end
  in
  go ()
