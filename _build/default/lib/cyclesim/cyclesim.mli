(** Levelized cycle-based simulation — the baseline the event-driven
    kernel is compared against in the engine ablation.

    Instead of an event queue and delta cycles, the combinational
    operators are topologically sorted once at elaboration; each clock
    cycle then evaluates every operator exactly once in that order,
    computes the controller's transition, and latches every sequential
    element two-phase. Semantics match {!Sim.Engine}-based simulation
    exactly (tests assert identical memory contents and cycle counts).

    Limitation: designs whose structure contains a combinational cycle —
    even one never active dynamically, as operator-sharing binding
    produces — are rejected with {!Combinational_cycle}; the event-driven
    kernel simulates those fine. Probe operators are inert here. *)

type t

exception Combinational_cycle of string

val create :
  ?corrupt:(string -> Operators.Faulty.perturbation option) ->
  memories:(string -> Operators.Memory.t) ->
  Netlist.Datapath.t ->
  Fsmkit.Fsm.t ->
  t
(** Validates both documents and their compatibility (same rules as
    {!Transform.Fsm_exec.attach}); raises {!Combinational_cycle},
    {!Netlist.Datapath.Invalid}, {!Fsmkit.Fsm.Invalid} or [Failure].

    [corrupt] is the fault-injection hook: for each operator output port
    (["inst.port"]) it may return a perturbation applied every time that
    cell commits — right after the unit evaluates for combinational
    operators, at the register-update phase for sequential ones — so the
    defect is observed exactly as {!Sim.Engine.corrupt_signal} applies it
    in the event-driven kernel. *)

val step : t -> unit
(** Execute one clock cycle. *)

val run : ?max_cycles:int -> t -> [ `Done | `Max_cycles | `Stopped ]
(** Step until the controller enters a done state ([`Done]), a [stop]
    operator fires ([`Stopped]), or [max_cycles] (default 10 million)
    elapse. *)

val cycles : t -> int
val current_state : t -> string
val in_done_state : t -> bool

val port_value : t -> string -> Bitvec.t
(** Current value of an operator output port (["inst.port"]). *)

val check_failures : t -> int
(** Number of times [check] operators fired. *)
