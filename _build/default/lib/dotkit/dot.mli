(** Graphviz dot document construction.

    The infrastructure renders datapaths, FSMs, RTGs and the flow diagram
    (Figure 1) as dot text; actual layout is left to external graphviz, as
    in the paper. *)

type attrs = (string * string) list

type t
(** A digraph under construction. *)

val create : ?graph_attrs:attrs -> ?node_defaults:attrs -> ?edge_defaults:attrs
  -> string -> t
(** [create name] starts an empty digraph called [name]. *)

val add_node : t -> ?attrs:attrs -> string -> unit
(** [add_node g id] declares node [id]. Re-declaring an id replaces its
    attributes. *)

val add_edge : t -> ?attrs:attrs -> string -> string -> unit
(** [add_edge g src dst] appends a directed edge. Parallel edges are kept. *)

val add_rank_same : t -> string list -> unit
(** Constrain the given node ids to the same rank. *)

val node_count : t -> int
val edge_count : t -> int

val to_string : t -> string
(** Render the dot source. Nodes appear in insertion order, then edges. *)

val save : string -> t -> unit

val quote : string -> string
(** Quote and escape an identifier or label for dot syntax. *)
