type attrs = (string * string) list

type t = {
  name : string;
  graph_attrs : attrs;
  node_defaults : attrs;
  edge_defaults : attrs;
  mutable nodes : (string * attrs) list;  (* reversed insertion order *)
  mutable edges : (string * string * attrs) list;  (* reversed *)
  mutable ranks : string list list;  (* reversed *)
}

let create ?(graph_attrs = []) ?(node_defaults = []) ?(edge_defaults = []) name =
  { name; graph_attrs; node_defaults; edge_defaults; nodes = []; edges = []; ranks = [] }

let add_node g ?(attrs = []) id =
  g.nodes <- (id, attrs) :: List.remove_assoc id g.nodes

let add_edge g ?(attrs = []) src dst = g.edges <- (src, dst, attrs) :: g.edges
let add_rank_same g ids = g.ranks <- ids :: g.ranks
let node_count g = List.length g.nodes
let edge_count g = List.length g.edges

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let attrs_to_string = function
  | [] -> ""
  | attrs ->
      let parts =
        List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (quote v)) attrs
      in
      " [" ^ String.concat ", " parts ^ "]"

let to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" (quote g.name));
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "  %s=%s;\n" k (quote v)))
    g.graph_attrs;
  if g.node_defaults <> [] then
    Buffer.add_string buf (Printf.sprintf "  node%s;\n" (attrs_to_string g.node_defaults));
  if g.edge_defaults <> [] then
    Buffer.add_string buf (Printf.sprintf "  edge%s;\n" (attrs_to_string g.edge_defaults));
  List.iter
    (fun (id, attrs) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s%s;\n" (quote id) (attrs_to_string attrs)))
    (List.rev g.nodes);
  List.iter
    (fun (src, dst, attrs) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s -> %s%s;\n" (quote src) (quote dst)
           (attrs_to_string attrs)))
    (List.rev g.edges);
  List.iter
    (fun ids ->
      Buffer.add_string buf
        (Printf.sprintf "  { rank=same; %s }\n"
           (String.concat "; " (List.map quote ids))))
    (List.rev g.ranks);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let save path g =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string g))
