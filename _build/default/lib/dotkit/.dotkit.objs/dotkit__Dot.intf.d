lib/dotkit/dot.mli:
