lib/dotkit/dot.ml: Buffer Fun List Printf String
