type t = { width : int; v : int }

exception Width_error of string

let max_width = 62

let width_error fmt = Format.kasprintf (fun s -> raise (Width_error s)) fmt

let mask width = if width = max_width then -1 lsr 1 else (1 lsl width) - 1

let check_width width =
  if width < 1 || width > max_width then
    width_error "bit width %d outside 1..%d" width max_width

let create ~width v =
  check_width width;
  { width; v = v land mask width }

let zero width = create ~width 0
let one width = create ~width 1
let ones width = create ~width (-1)
let width a = a.width
let to_int a = a.v

let msb a = a.v lsr (a.width - 1) land 1 = 1

let to_signed a = if msb a then a.v - (mask a.width + 1) else a.v

let is_zero a = a.v = 0
let equal a b = a.width = b.width && a.v = b.v

let compare a b =
  match Stdlib.compare a.width b.width with
  | 0 -> Stdlib.compare a.v b.v
  | c -> c

let bit a i =
  if i < 0 || i >= a.width then
    width_error "bit index %d outside 0..%d" i (a.width - 1);
  a.v lsr i land 1 = 1

let same_width op a b =
  if a.width <> b.width then
    width_error "%s: width mismatch (%d vs %d)" op a.width b.width

let binop op f a b =
  same_width op a b;
  { a with v = f a.v b.v land mask a.width }

let add a b = binop "add" ( + ) a b
let sub a b = binop "sub" ( - ) a b
let mul a b = binop "mul" ( * ) a b
let neg a = { a with v = -a.v land mask a.width }

let udiv a b =
  same_width "udiv" a b;
  if b.v = 0 then ones a.width else { a with v = a.v / b.v }

let urem a b =
  same_width "urem" a b;
  if b.v = 0 then a else { a with v = a.v mod b.v }

let sdiv a b =
  same_width "sdiv" a b;
  if b.v = 0 then ones a.width
  else create ~width:a.width (to_signed a / to_signed b)

let srem a b =
  same_width "srem" a b;
  if b.v = 0 then a else create ~width:a.width (to_signed a mod to_signed b)

let logand a b = binop "and" ( land ) a b
let logor a b = binop "or" ( lor ) a b
let logxor a b = binop "xor" ( lxor ) a b
let lognot a = { a with v = lnot a.v land mask a.width }

let check_shift n = if n < 0 then width_error "negative shift amount %d" n

let shift_left a n =
  check_shift n;
  if n >= a.width then zero a.width
  else { a with v = a.v lsl n land mask a.width }

let shift_right_logical a n =
  check_shift n;
  if n >= a.width then zero a.width else { a with v = a.v lsr n }

let shift_right_arith a n =
  check_shift n;
  let n = min n a.width in
  create ~width:a.width (to_signed a asr min n (max_width - 1))

let of_bool b = { width = 1; v = (if b then 1 else 0) }
let to_bool a = a.v <> 0

let cmp op pred a b =
  same_width op a b;
  of_bool (pred a b)

let eq a b = cmp "eq" (fun a b -> a.v = b.v) a b
let ne a b = cmp "ne" (fun a b -> a.v <> b.v) a b
let ult a b = cmp "ult" (fun a b -> a.v < b.v) a b
let ule a b = cmp "ule" (fun a b -> a.v <= b.v) a b
let ugt a b = cmp "ugt" (fun a b -> a.v > b.v) a b
let uge a b = cmp "uge" (fun a b -> a.v >= b.v) a b
let slt a b = cmp "slt" (fun a b -> to_signed a < to_signed b) a b
let sle a b = cmp "sle" (fun a b -> to_signed a <= to_signed b) a b
let sgt a b = cmp "sgt" (fun a b -> to_signed a > to_signed b) a b
let sge a b = cmp "sge" (fun a b -> to_signed a >= to_signed b) a b

let concat hi lo =
  let width = hi.width + lo.width in
  check_width width;
  { width; v = (hi.v lsl lo.width) lor lo.v }

let slice a ~hi ~lo =
  if lo < 0 || hi >= a.width || hi < lo then
    width_error "slice [%d:%d] outside vector of width %d" hi lo a.width;
  create ~width:(hi - lo + 1) (a.v lsr lo)

let resize a w = create ~width:w a.v
let sresize a w = create ~width:w (to_signed a)

let to_string a = Printf.sprintf "%d'd%d" a.width a.v

let to_binary_string a =
  String.init a.width (fun i ->
      if bit a (a.width - 1 - i) then '1' else '0')

let of_string s =
  let fail () = failwith (Printf.sprintf "Bitvec.of_string: %S" s) in
  let split c =
    match String.index_opt s c with
    | Some i ->
        Some
          ( String.sub s 0 i,
            String.sub s (i + 1) (String.length s - i - 1) )
    | None -> None
  in
  let parse_int str = match int_of_string_opt str with
    | Some v -> v
    | None -> fail ()
  in
  match split '\'' with
  | Some (w, rest) when String.length rest >= 2 ->
      let width = parse_int w in
      let digits = String.sub rest 1 (String.length rest - 1) in
      let v =
        match rest.[0] with
        | 'd' -> parse_int digits
        | 'h' -> parse_int ("0x" ^ digits)
        | 'b' -> parse_int ("0b" ^ digits)
        | _ -> fail ()
      in
      create ~width v
  | Some _ -> fail ()
  | None -> (
      match split ':' with
      | Some (w, v) -> create ~width:(parse_int w) (parse_int v)
      | None -> fail ())

let pp ppf a = Format.pp_print_string ppf (to_string a)
