lib/fsmkit/fsm.mli: Guard Xmlkit
