lib/fsmkit/fsm.ml: Bitvec Format Guard Hashtbl List Printf Xmlkit
