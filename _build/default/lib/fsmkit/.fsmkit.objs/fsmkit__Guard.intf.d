lib/fsmkit/guard.mli:
