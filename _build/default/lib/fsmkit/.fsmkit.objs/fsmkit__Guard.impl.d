lib/fsmkit/guard.ml: List Printf String
