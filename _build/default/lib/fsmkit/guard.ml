type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

type t =
  | True
  | Test of { signal : string; op : cmp; value : int }
  | Not of t
  | And of t * t
  | Or of t * t

let cmp_to_string = function
  | Ceq -> "=="
  | Cne -> "!="
  | Clt -> "<"
  | Cle -> "<="
  | Cgt -> ">"
  | Cge -> ">="

(* --- lexer ------------------------------------------------------- *)

type token =
  | Tident of string
  | Tint of int
  | Tcmp of cmp
  | Tnot
  | Tand
  | Tor
  | Tlparen
  | Trparen
  | Tend

let lex src =
  let n = String.length src in
  let tokens = ref [] in
  let push t = tokens := t :: !tokens in
  let is_ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9') || c = '_' || c = '-'
  in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '(' then (push Tlparen; incr i)
    else if c = ')' then (push Trparen; incr i)
    else if c = '!' && !i + 1 < n && src.[!i + 1] = '=' then (push (Tcmp Cne); i := !i + 2)
    else if c = '!' then (push Tnot; incr i)
    else if c = '=' && !i + 1 < n && src.[!i + 1] = '=' then (push (Tcmp Ceq); i := !i + 2)
    else if c = '<' && !i + 1 < n && src.[!i + 1] = '=' then (push (Tcmp Cle); i := !i + 2)
    else if c = '<' then (push (Tcmp Clt); incr i)
    else if c = '>' && !i + 1 < n && src.[!i + 1] = '=' then (push (Tcmp Cge); i := !i + 2)
    else if c = '>' then (push (Tcmp Cgt); incr i)
    else if c = '&' && !i + 1 < n && src.[!i + 1] = '&' then (push Tand; i := !i + 2)
    else if c = '|' && !i + 1 < n && src.[!i + 1] = '|' then (push Tor; i := !i + 2)
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do incr i done;
      push (Tint (int_of_string (String.sub src start (!i - start))))
    end
    else if is_ident c then begin
      let start = !i in
      while !i < n && is_ident src.[!i] do incr i done;
      push (Tident (String.sub src start (!i - start)))
    end
    else failwith (Printf.sprintf "guard %S: unexpected character %C" src c)
  done;
  push Tend;
  List.rev !tokens

(* --- parser ------------------------------------------------------ *)

type parser_state = { mutable toks : token list; src : string }

let peek st = match st.toks with t :: _ -> t | [] -> Tend
let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()
let syntax_error st what =
  failwith (Printf.sprintf "guard %S: expected %s" st.src what)

let rec parse_or st =
  let left = parse_and st in
  match peek st with
  | Tor ->
      advance st;
      Or (left, parse_or st)
  | _ -> left

and parse_and st =
  let left = parse_not st in
  match peek st with
  | Tand ->
      advance st;
      And (left, parse_and st)
  | _ -> left

and parse_not st =
  match peek st with
  | Tnot ->
      advance st;
      Not (parse_not st)
  | _ -> parse_atom st

and parse_atom st =
  match peek st with
  | Tint 1 ->
      advance st;
      True
  | Tint 0 ->
      advance st;
      Not True
  | Tlparen ->
      advance st;
      let g = parse_or st in
      (match peek st with
      | Trparen -> advance st
      | _ -> syntax_error st "')'");
      g
  | Tident name -> (
      advance st;
      match peek st with
      | Tcmp op -> (
          advance st;
          match peek st with
          | Tint value ->
              advance st;
              Test { signal = name; op; value }
          | _ -> syntax_error st "an integer after the comparison")
      | _ -> Test { signal = name; op = Cne; value = 0 })
  | _ -> syntax_error st "an identifier or '('"

let parse src =
  if String.for_all (fun c -> c = ' ' || c = '\t') src then True
  else begin
    let st = { toks = lex src; src } in
    let g = parse_or st in
    match peek st with
    | Tend -> g
    | _ -> syntax_error st "end of guard"
  end

(* --- printing / evaluation --------------------------------------- *)

(* The parser is right-associative for && and ||, so compound operands are
   parenthesized except a bare right-recursive chain would re-associate;
   parenthesizing every compound operand keeps printing/parsing a
   structural inverse. *)
let rec str = function
  | True -> "1"
  | Test { signal; op = Cne; value = 0 } -> signal
  | Test { signal; op; value } ->
      Printf.sprintf "%s%s%d" signal (cmp_to_string op) value
  | Not g -> "!" ^ atom_string g
  | And (a, b) -> Printf.sprintf "%s && %s" (and_operand a) (and_operand b)
  | Or (a, b) -> Printf.sprintf "%s || %s" (or_operand a) (or_operand b)

and atom_string g =
  match g with
  | True | Test _ | Not _ -> str g
  | And _ | Or _ -> "(" ^ str g ^ ")"

and and_operand g =
  match g with And _ | Or _ -> "(" ^ str g ^ ")" | True | Test _ | Not _ -> str g

and or_operand g =
  match g with Or _ -> "(" ^ str g ^ ")" | True | Test _ | Not _ | And _ -> str g

(* Top-level [True] prints as the empty string so the XML writer can omit
   the [on] attribute for unconditional transitions. *)
let to_string = function True -> "" | g -> str g

let rec eval g lookup =
  match g with
  | True -> true
  | Test { signal; op; value } -> (
      let v = lookup signal in
      match op with
      | Ceq -> v = value
      | Cne -> v <> value
      | Clt -> v < value
      | Cle -> v <= value
      | Cgt -> v > value
      | Cge -> v >= value)
  | Not g -> not (eval g lookup)
  | And (a, b) -> eval a lookup && eval b lookup
  | Or (a, b) -> eval a lookup || eval b lookup

let signals g =
  let rec collect acc = function
    | True -> acc
    | Test { signal; _ } -> signal :: acc
    | Not g -> collect acc g
    | And (a, b) | Or (a, b) -> collect (collect acc a) b
  in
  List.sort_uniq compare (collect [] g)

let equal (a : t) (b : t) = a = b
