(** Transition guards: boolean expressions over FSM status inputs.

    Concrete syntax (used in the [on] attribute of the FSM dialect):
    {v
guard ::= or
or    ::= and ('||' and)*
and   ::= not ('&&' not)*
not   ::= '!' not | atom
atom  ::= '(' or ')' | ident | ident cmp int
cmp   ::= '==' | '!=' | '<' | '<=' | '>' | '>='
    v}
    A bare identifier means [ident != 0]. Comparisons are unsigned over
    the status signal's value. *)

type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

type t =
  | True
  | Test of { signal : string; op : cmp; value : int }
  | Not of t
  | And of t * t
  | Or of t * t

val parse : string -> t
(** Raises [Failure] with a message on syntax errors. An empty or
    whitespace-only string parses to {!True}. *)

val to_string : t -> string
(** Canonical concrete syntax; [parse (to_string g)] is structurally
    equal to [g] up to redundant parentheses. *)

val eval : t -> (string -> int) -> bool
(** [eval g lookup] evaluates with [lookup] giving each status signal's
    current unsigned value. *)

val signals : t -> string list
(** Status signals referenced, sorted, without duplicates. *)

val cmp_to_string : cmp -> string
val equal : t -> t -> bool
