let generate = Hwgen.generate_shared
