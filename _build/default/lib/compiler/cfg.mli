(** Control-flow graph over lowered statements.

    Blocks hold straight-line {!Ir.sstmt} runs; terminators carry the
    (pure) source conditions. *)

type terminator =
  | Jump of int
  | Branch of Lang.Ast.cond * int * int  (** then-target, else-target. *)
  | Halt

type block = { stmts : Ir.sstmt list; term : terminator }

type t = {
  blocks : block array;
  entry : int;
  temps : string list;  (** Temporaries introduced by lowering. *)
}

val build : Lang.Ast.stmt list -> t
(** Lower one partition's statement list. Raises [Invalid_argument] on
    [Partition] markers (split the program first). *)

val block_count : t -> int
val statement_count : t -> int
val branch_count : t -> int

val pp : Format.formatter -> t -> unit
