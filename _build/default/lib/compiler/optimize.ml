module Ast = Lang.Ast

let fold_binop ~width op a b =
  let ba = Bitvec.create ~width a and bb = Bitvec.create ~width b in
  let f =
    match op with
    | Ast.Add -> Bitvec.add
    | Ast.Sub -> Bitvec.sub
    | Ast.Mul -> Bitvec.mul
    | Ast.Div -> Bitvec.sdiv
    | Ast.Rem -> Bitvec.srem
    | Ast.Band -> Bitvec.logand
    | Ast.Bor -> Bitvec.logor
    | Ast.Bxor -> Bitvec.logxor
    | Ast.Shl -> fun a b -> Bitvec.shift_left a (Bitvec.to_int b)
    | Ast.Shra -> fun a b -> Bitvec.shift_right_arith a (Bitvec.to_int b)
    | Ast.Shrl -> fun a b -> Bitvec.shift_right_logical a (Bitvec.to_int b)
  in
  Bitvec.to_signed (f ba bb)

let fold_unop ~width op a =
  let ba = Bitvec.create ~width a in
  Bitvec.to_signed (match op with Ast.Neg -> Bitvec.neg ba | Ast.Bnot -> Bitvec.lognot ba)

let power_of_two v = v > 0 && v land (v - 1) = 0

let log2 v =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v lsr 1) in
  go 0 v

(* Canonical integer value at the program width (so [256] and [0] compare
   equal at width 8). *)
let canon ~width v = Bitvec.to_signed (Bitvec.create ~width v)

let rec expr ~width e =
  match e with
  | Ast.Int v -> Ast.Int (canon ~width v)
  | Ast.Var _ -> e
  | Ast.Mem_read (m, a) -> Ast.Mem_read (m, expr ~width a)
  | Ast.Unop (op, a) -> (
      match expr ~width a with
      | Ast.Int v -> Ast.Int (fold_unop ~width op v)
      | Ast.Unop (inner, a') when inner = op -> a' (* ~~x, --x *)
      | a' -> Ast.Unop (op, a'))
  | Ast.Binop (op, a, b) -> (
      let a' = expr ~width a and b' = expr ~width b in
      match (op, a', b') with
      | _, Ast.Int va, Ast.Int vb -> Ast.Int (fold_binop ~width op va vb)
      (* identity elements *)
      | Ast.Add, x, Ast.Int 0 | Ast.Add, Ast.Int 0, x -> x
      | Ast.Sub, x, Ast.Int 0 -> x
      | Ast.Mul, x, Ast.Int 1 | Ast.Mul, Ast.Int 1, x -> x
      | Ast.Mul, _, Ast.Int 0 | Ast.Mul, Ast.Int 0, _ -> Ast.Int 0
      | Ast.Div, x, Ast.Int 1 -> x
      | Ast.Band, _, Ast.Int 0 | Ast.Band, Ast.Int 0, _ -> Ast.Int 0
      | Ast.Bor, x, Ast.Int 0 | Ast.Bor, Ast.Int 0, x -> x
      | Ast.Bxor, x, Ast.Int 0 | Ast.Bxor, Ast.Int 0, x -> x
      | (Ast.Shl | Ast.Shra | Ast.Shrl), x, Ast.Int 0 -> x
      (* strength reduction: multiply by a power of two (exact under
         two's-complement wrap) *)
      | Ast.Mul, x, Ast.Int v when power_of_two v ->
          Ast.Binop (Ast.Shl, x, Ast.Int (log2 v))
      | Ast.Mul, Ast.Int v, x when power_of_two v ->
          Ast.Binop (Ast.Shl, x, Ast.Int (log2 v))
      | _, _, _ -> Ast.Binop (op, a', b'))

let rec cond_value ~width c =
  match c with
  | Ast.Cmp (op, a, b) -> (
      match (expr ~width a, expr ~width b) with
      | Ast.Int va, Ast.Int vb ->
          Some
            (match op with
            | Ast.Eq -> va = vb
            | Ast.Ne -> va <> vb
            | Ast.Lt -> va < vb
            | Ast.Le -> va <= vb
            | Ast.Gt -> va > vb
            | Ast.Ge -> va >= vb)
      | _, _ -> None)
  | Ast.Cnot c -> Option.map not (cond_value ~width c)
  | Ast.Cand (a, b) -> (
      match (cond_value ~width a, cond_value ~width b) with
      | Some false, _ | _, Some false -> Some false
      | Some true, Some true -> Some true
      | _, _ -> None)
  | Ast.Cor (a, b) -> (
      match (cond_value ~width a, cond_value ~width b) with
      | Some true, _ | _, Some true -> Some true
      | Some false, Some false -> Some false
      | _, _ -> None)

let rec cond ~width c =
  match cond_value ~width c with
  | Some _ -> None
  | None -> (
      match c with
      | Ast.Cmp (op, a, b) -> Some (Ast.Cmp (op, expr ~width a, expr ~width b))
      | Ast.Cnot inner -> (
          match cond ~width inner with
          | Some inner' -> Some (Ast.Cnot inner')
          | None -> None (* contradiction with cond_value above *))
      | Ast.Cand (a, b) -> (
          match (cond_value ~width a, cond_value ~width b) with
          | Some true, _ -> cond ~width b
          | _, Some true -> cond ~width a
          | _, _ ->
              Some
                (Ast.Cand
                   ( Option.value (cond ~width a) ~default:a,
                     Option.value (cond ~width b) ~default:b )))
      | Ast.Cor (a, b) -> (
          match (cond_value ~width a, cond_value ~width b) with
          | Some false, _ -> cond ~width b
          | _, Some false -> cond ~width a
          | _, _ ->
              Some
                (Ast.Cor
                   ( Option.value (cond ~width a) ~default:a,
                     Option.value (cond ~width b) ~default:b ))))

let rec stmts ~width body = List.concat_map (stmt ~width) body

and stmt ~width s =
  match s with
  | Ast.Assign (v, e) -> [ Ast.Assign (v, expr ~width e) ]
  | Ast.Mem_write (m, a, v) -> [ Ast.Mem_write (m, expr ~width a, expr ~width v) ]
  | Ast.Assert c -> (
      match cond_value ~width c with
      | Some true -> [] (* provably holds: no hardware needed *)
      | Some false | None -> (
          match cond ~width c with
          | Some c' -> [ Ast.Assert c' ]
          | None -> [ Ast.Assert c ] (* constant-false: keep as written *)))
  | Ast.If (c, t, e) -> (
      match cond_value ~width c with
      | Some true -> stmts ~width t
      | Some false -> stmts ~width e
      | None ->
          [ Ast.If (Option.value (cond ~width c) ~default:c,
                    stmts ~width t, stmts ~width e) ])
  | Ast.While (c, body) -> (
      match cond_value ~width c with
      | Some false -> []
      | Some true | None ->
          (* A constant-true loop is kept verbatim (it may be the
             program's intent to spin until an external stop). *)
          [ Ast.While (Option.value (cond ~width c) ~default:c,
                       stmts ~width body) ])
  | Ast.Partition -> [ Ast.Partition ]

let program (prog : Ast.program) =
  { prog with Ast.body = stmts ~width:prog.Ast.prog_width prog.Ast.body }

let stmt_count body =
  let rec go acc = function
    | Ast.Assign _ | Ast.Mem_write _ | Ast.Assert _ | Ast.Partition -> acc + 1
    | Ast.If (_, t, e) ->
        List.fold_left go (List.fold_left go (acc + 1) t) e
    | Ast.While (_, b) -> List.fold_left go (acc + 1) b
  in
  List.fold_left go 0 body
