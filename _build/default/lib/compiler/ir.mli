(** Lowered intermediate representation.

    Source statements are flattened so that every memory access stands
    alone — the shape each datapath state implements:
    - [Sassign (v, e)]: [v := e] with [e] a {e pure} scalar expression
      (constants, variables, ALU operators; no memory reads);
    - [Sload (v, m, addr)]: [v := m[addr]] with a pure address;
    - [Sstore (m, addr, value)]: [m[addr] := value], both operands pure.

    Memory reads inside source expressions are hoisted into fresh
    temporaries ([$t0], [$t1], ...) by {!lower_expr}; conditions are
    already pure by {!Lang.Check}. *)

type sstmt =
  | Sassign of string * Lang.Ast.expr
  | Sload of string * string * Lang.Ast.expr
  | Sstore of string * Lang.Ast.expr * Lang.Ast.expr
  | Scheck of int * Lang.Ast.cond
      (** Runtime assertion (index within the partition, pure condition);
          becomes a [check] operator enabled in its own state. *)

type temp_alloc
(** Generator of fresh temporary names, shared across one partition. *)

val make_temp_alloc : unit -> temp_alloc
val temps_allocated : temp_alloc -> string list
(** In allocation order. *)

val lower_expr : temp_alloc -> Lang.Ast.expr -> sstmt list * Lang.Ast.expr
(** [lower_expr t e] returns the loads to execute first and the pure
    residual expression. *)

val lower_stmt_simple : temp_alloc -> Lang.Ast.stmt -> sstmt list
(** Lower one non-control statement ([Assign] or [Mem_write]).
    Raises [Invalid_argument] on control statements. *)

val assert_pure : Lang.Ast.expr -> unit
(** Raises [Invalid_argument] if the expression reads a memory. *)

val pp_sstmt : Format.formatter -> sstmt -> unit
