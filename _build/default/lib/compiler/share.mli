(** Operator-sharing binding (see {!Hwgen.generate_shared}). *)

val generate :
  ?fold_branches:bool ->
  ?probes:string list ->
  name:string ->
  width:int ->
  memories:(string * Hwgen.memory_info) list ->
  var_inits:(string * int) list ->
  Cfg.t ->
  Hwgen.result
