(** Hardware generation: one CFG partition to a datapath / FSM pair.

    Architecture generated (classic FSMD, no operator sharing — see
    {!Share} for the sharing ablation):
    - every variable (and lowering temporary) referenced by the partition
      becomes a [reg] with a write-enable, fed through a mux over the
      distinct values assigned to it;
    - every expression node becomes a dedicated functional unit; constants
      are deduplicated [const] operators;
    - every memory becomes an [sram] whose address/din are muxed over the
      distinct access expressions, with the address truncated from the
      program width by a [zext];
    - each lowered statement executes in one FSM state (expression trees
      chain combinationally within the state; the register/memory write
      happens on the state's clock edge);
    - each CFG branch gets a test state whose comparison tree drives a
      1-bit status signal the FSM branches on ([?fold_branches] merges
      that test into the preceding statement's state when the statement
      does not write a condition operand — one cycle saved per branch);
    - a final [halt] state is flagged done;
    - [?probes] names variables whose registers get a [probe] operator
      (instance [probe_<var>]) recording every value during simulation. *)

type memory_info = { size : int }

type result = {
  datapath : Netlist.Datapath.t;
  fsm : Fsmkit.Fsm.t;
  state_count : int;
  fu_count : int;  (** Functional units (excludes test aids). *)
}

val generate :
  ?fold_branches:bool ->
  ?probes:string list ->
  name:string ->
  width:int ->
  memories:(string * memory_info) list ->
  var_inits:(string * int) list ->
  Cfg.t ->
  result
(** [name] prefixes the datapath/FSM document names. [var_inits] must
    cover every source variable (lowering temporaries are added
    internally, initialized to 0). The produced documents pass
    {!Netlist.Datapath.validate} and {!Fsmkit.Fsm.validate}. *)

val generate_shared :
  ?fold_branches:bool ->
  ?probes:string list ->
  name:string ->
  width:int ->
  memories:(string * memory_info) list ->
  var_inits:(string * int) list ->
  Cfg.t ->
  result
(** Like {!generate} but binds expression nodes to pooled FU instances
    per (kind, width): the k-th node of a kind within a state uses the
    k-th pooled instance, whose input ports grow selection muxes over the
    distinct operands seen across states. Fewer functional units at the
    cost of muxes — the operator-sharing design point. *)

val addr_width : int -> int
(** Address width for a memory of the given size (bits to address
    [size - 1], at least 1). *)
