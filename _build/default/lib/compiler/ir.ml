module Ast = Lang.Ast

type sstmt =
  | Sassign of string * Ast.expr
  | Sload of string * string * Ast.expr
  | Sstore of string * Ast.expr * Ast.expr
  | Scheck of int * Ast.cond

type temp_alloc = { mutable next : int; mutable names : string list }

let make_temp_alloc () = { next = 0; names = [] }

let fresh t =
  let name = Printf.sprintf "$t%d" t.next in
  t.next <- t.next + 1;
  t.names <- name :: t.names;
  name

let temps_allocated t = List.rev t.names

let rec lower_expr t = function
  | Ast.Int _ as e -> ([], e)
  | Ast.Var _ as e -> ([], e)
  | Ast.Mem_read (m, addr) ->
      let loads, addr = lower_expr t addr in
      let tmp = fresh t in
      (loads @ [ Sload (tmp, m, addr) ], Ast.Var tmp)
  | Ast.Binop (op, a, b) ->
      let la, a = lower_expr t a in
      let lb, b = lower_expr t b in
      (la @ lb, Ast.Binop (op, a, b))
  | Ast.Unop (op, a) ->
      let la, a = lower_expr t a in
      (la, Ast.Unop (op, a))

let lower_stmt_simple t = function
  | Ast.Assign (v, e) ->
      let loads, e = lower_expr t e in
      loads @ [ Sassign (v, e) ]
  | Ast.Mem_write (m, addr, value) ->
      let la, addr = lower_expr t addr in
      let lv, value = lower_expr t value in
      la @ lv @ [ Sstore (m, addr, value) ]
  | Ast.Assert _ | Ast.If _ | Ast.While _ | Ast.Partition ->
      invalid_arg "Ir.lower_stmt_simple: control statement"

let assert_pure e =
  if Ast.expr_reads_memory e then
    invalid_arg "Ir: expression unexpectedly reads a memory"

let rec pp_expr ppf = function
  | Ast.Int v -> Format.pp_print_int ppf v
  | Ast.Var v -> Format.pp_print_string ppf v
  | Ast.Mem_read (m, a) -> Format.fprintf ppf "%s[%a]" m pp_expr a
  | Ast.Binop (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp_expr a (Ast.binop_to_string op)
        pp_expr b
  | Ast.Unop (op, a) -> Format.fprintf ppf "%s%a" (Ast.unop_to_string op) pp_expr a

let pp_sstmt ppf = function
  | Sassign (v, e) -> Format.fprintf ppf "%s := %a" v pp_expr e
  | Sload (v, m, a) -> Format.fprintf ppf "%s := %s[%a]" v m pp_expr a
  | Sstore (m, a, v) -> Format.fprintf ppf "%s[%a] := %a" m pp_expr a pp_expr v
  | Scheck (k, _) -> Format.fprintf ppf "assert#%d" k
