(** Source-level optimizations, applied before lowering when enabled.

    All rewrites preserve the wrap-around semantics at the program width:
    - constant folding (with {!Bitvec} arithmetic at the program width);
    - algebraic identities ([x+0], [x*1], [x&0], [x^0], [x<<0],
      double negation, ...);
    - strength reduction: multiplication by a power of two becomes a left
      shift (exact under two's-complement wrap; division is {e not}
      reduced — signed division truncates toward zero while an arithmetic
      shift floors);
    - branch folding: [if]/[while] with constant conditions.

    Fewer and cheaper expression nodes mean fewer functional units in the
    generated datapath — the effect the ablation benches measure. *)

val expr : width:int -> Lang.Ast.expr -> Lang.Ast.expr
val cond : width:int -> Lang.Ast.cond -> Lang.Ast.cond option
(** [None] means the condition is constant; query {!cond_value}. *)

val cond_value : width:int -> Lang.Ast.cond -> bool option
(** [Some b] when the condition folds to the constant [b]. *)

val program : Lang.Ast.program -> Lang.Ast.program

val stmt_count : Lang.Ast.stmt list -> int
(** Statement nodes, recursively (for before/after diagnostics). *)
