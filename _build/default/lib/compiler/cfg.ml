module Ast = Lang.Ast

type terminator = Jump of int | Branch of Ast.cond * int * int | Halt

type block = { stmts : Ir.sstmt list; term : terminator }

type t = { blocks : block array; entry : int; temps : string list }

(* Blocks are reserved first (forward references during loop
   construction) and filled afterwards. *)
type builder = {
  table : (int, block) Hashtbl.t;
  mutable count : int;
  mutable checks : int;  (* assertion counter, for stable check ids *)
}

let reserve b =
  let id = b.count in
  b.count <- b.count + 1;
  id

let set b id stmts term = Hashtbl.replace b.table id { stmts; term }

let is_simple = function
  | Ast.Assign _ | Ast.Mem_write _ | Ast.Assert _ -> true
  | Ast.If _ | Ast.While _ -> false
  | Ast.Partition -> invalid_arg "Cfg.build: partition marker inside a partition"

let build stmts =
  let b = { table = Hashtbl.create 16; count = 0; checks = 0 } in
  let temps = Ir.make_temp_alloc () in
  let lower_simple stmt =
    match stmt with
    | Ast.Assert cond ->
        let k = b.checks in
        b.checks <- b.checks + 1;
        [ Ir.Scheck (k, cond) ]
    | Ast.Assign _ | Ast.Mem_write _ -> Ir.lower_stmt_simple temps stmt
    | Ast.If _ | Ast.While _ | Ast.Partition -> assert false
  in
  (* [compile_seq stmts exit] -> entry block id of the sequence; control
     reaches [exit] when the sequence completes. *)
  let rec compile_seq stmts exit_id =
    let simple, rest =
      let rec split acc = function
        | s :: tail when is_simple s -> split (s :: acc) tail
        | tail -> (List.rev acc, tail)
      in
      split [] stmts
    in
    let lowered = List.concat_map lower_simple simple in
    match rest with
    | [] ->
        if lowered = [] then exit_id
        else begin
          let id = reserve b in
          set b id lowered (Jump exit_id);
          id
        end
    | Ast.If (cond, then_branch, else_branch) :: tail ->
        let tail_entry = compile_seq tail exit_id in
        let then_entry = compile_seq then_branch tail_entry in
        let else_entry = compile_seq else_branch tail_entry in
        let id = reserve b in
        set b id lowered (Branch (cond, then_entry, else_entry));
        id
    | Ast.While (cond, body) :: tail ->
        let tail_entry = compile_seq tail exit_id in
        let cond_id = reserve b in
        let body_entry = compile_seq body cond_id in
        set b cond_id [] (Branch (cond, body_entry, tail_entry));
        if lowered = [] then cond_id
        else begin
          let id = reserve b in
          set b id lowered (Jump cond_id);
          id
        end
    | (Ast.Assign _ | Ast.Mem_write _ | Ast.Assert _ | Ast.Partition) :: _ ->
        assert false (* [is_simple] split these off *)
  in
  let halt_id = reserve b in
  set b halt_id [] Halt;
  let entry = compile_seq stmts halt_id in
  let blocks =
    Array.init b.count (fun i ->
        match Hashtbl.find_opt b.table i with
        | Some block -> block
        | None -> assert false)
  in
  { blocks; entry; temps = Ir.temps_allocated temps }

let block_count cfg = Array.length cfg.blocks

let statement_count cfg =
  Array.fold_left (fun acc bl -> acc + List.length bl.stmts) 0 cfg.blocks

let branch_count cfg =
  Array.fold_left
    (fun acc bl ->
      match bl.term with Branch _ -> acc + 1 | Jump _ | Halt -> acc)
    0 cfg.blocks

let pp ppf cfg =
  Format.fprintf ppf "entry: b%d@." cfg.entry;
  Array.iteri
    (fun i bl ->
      Format.fprintf ppf "b%d:@." i;
      List.iter (fun s -> Format.fprintf ppf "  %a@." Ir.pp_sstmt s) bl.stmts;
      match bl.term with
      | Jump j -> Format.fprintf ppf "  jump b%d@." j
      | Branch (_, t, e) -> Format.fprintf ppf "  branch b%d b%d@." t e
      | Halt -> Format.fprintf ppf "  halt@.")
    cfg.blocks
