lib/compiler/compile.mli: Cfg Fsmkit Lang Netlist Rtg
