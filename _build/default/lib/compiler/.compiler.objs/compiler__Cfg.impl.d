lib/compiler/cfg.ml: Array Format Hashtbl Ir Lang List
