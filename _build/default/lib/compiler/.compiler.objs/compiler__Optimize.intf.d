lib/compiler/optimize.mli: Lang
