lib/compiler/optimize.ml: Bitvec Lang List Option
