lib/compiler/ir.ml: Format Lang List Printf
