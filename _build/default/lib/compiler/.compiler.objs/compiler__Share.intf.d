lib/compiler/share.mli: Cfg Hwgen
