lib/compiler/compile.ml: Cfg Fsmkit Hwgen Lang List Netlist Optimize Printf Rtg Share
