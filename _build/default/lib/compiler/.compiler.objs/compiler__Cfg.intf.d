lib/compiler/cfg.mli: Format Ir Lang
