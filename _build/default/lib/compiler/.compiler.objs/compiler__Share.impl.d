lib/compiler/share.ml: Hwgen
