lib/compiler/ir.mli: Format Lang
