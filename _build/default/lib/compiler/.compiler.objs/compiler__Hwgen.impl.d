lib/compiler/hwgen.ml: Array Cfg Fsmkit Hashtbl Ir Lang List Netlist Operators Option Printf String
