lib/compiler/hwgen.mli: Cfg Fsmkit Netlist
