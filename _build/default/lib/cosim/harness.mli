(** Processor / reconfigurable-fabric co-simulation.

    One engine, one clock, two components: the {!Cpu} and an elaborated
    accelerator configuration. They share SRAMs; the CPU raises the
    fabric's start line ([Start]) and polls its controller's done state
    ([Wait]) — the tightly-coupled arrangement the paper names as future
    work. The accelerator's FSM holds in its initial state until started.

    Multi-configuration (RTG) accelerators are not supported here: a
    reconfiguration tears one simulation down and builds the next, which
    contradicts "one engine"; sequence configurations with
    {!Testinfra.Simulate.run_rtg} instead. *)

type result = {
  stop : Sim.Engine.stop_reason;
  cpu_halted : bool;
  cpu_fault : Cpu.fault option;
  acc : Bitvec.t;  (** Final accumulator. *)
  instructions : int;
  cycles : int;  (** Clock cycles elapsed. *)
  accelerator_started : bool;
  accelerator_done : bool;
  accelerator_final_state : string option;
  notifications : Operators.Models.notification list;
}

val run :
  ?clock_period:int ->
  ?max_cycles:int ->
  ?accelerator:Netlist.Datapath.t * Fsmkit.Fsm.t ->
  program:Cpu.instruction array ->
  memory_map:Cpu.segment list ->
  width:int ->
  memories:(string -> Operators.Memory.t) ->
  unit ->
  result
(** Simulate until the CPU halts (or faults), or [max_cycles] (default
    1 million) elapse. *)
