(** A small accumulator microprocessor model.

    The paper closes with "further work will focus on functional
    simulation of a microprocessor tightly coupled to reconfigurable
    hardware components"; this module provides that processor. It executes
    one instruction per clock cycle inside the same event-driven engine as
    the fabric, reads and writes the {e shared} SRAMs through a memory
    map, and controls the accelerator through a start signal and a done
    flag ({!Cosim}). *)

type instruction =
  | Ldi of int  (** acc := imm (wrapped at the CPU width) *)
  | Ld of int  (** acc := mem[addr] *)
  | St of int  (** mem[addr] := acc *)
  | Add of int  (** acc := acc + mem[addr] *)
  | Sub of int  (** acc := acc - mem[addr] *)
  | Addi of int  (** acc := acc + imm *)
  | Jmp of int  (** pc := target *)
  | Beqz of int  (** if acc = 0 then pc := target *)
  | Bnez of int  (** if acc <> 0 then pc := target *)
  | Start  (** Raise the accelerator's start line (stays high). *)
  | Wait  (** Stall until the accelerator reports done. *)
  | Halt

type segment = {
  base : int;  (** First CPU address of the window. *)
  memory : string;  (** Backing store name; its size fixes the window. *)
}

type fault =
  | Unmapped_address of { pc : int; address : int }
  | Pc_out_of_range of { pc : int }

type t

val create :
  Sim.Engine.t ->
  clock:Sim.Clock.t ->
  width:int ->
  program:instruction array ->
  memory_map:segment list ->
  memories:(string -> Operators.Memory.t) ->
  t
(** Build the processor into [engine]. [width] is the accumulator/data
    width (must match every mapped memory's width). Raises [Failure] on
    overlapping segments or width mismatches. *)

val start_line : t -> Sim.Engine.signal
(** 1-bit output raised by [Start]; connect to the fabric FSM's enable. *)

val set_done_flag : t -> (unit -> bool) -> unit
(** Provide the predicate [Wait] polls (the accelerator's done state). *)

val halted : t -> bool
val fault : t -> fault option
val acc : t -> Bitvec.t
val pc : t -> int
val instructions_executed : t -> int
(** Executed instructions ([Wait] stall cycles are not counted). *)

val pp_fault : Format.formatter -> fault -> unit
