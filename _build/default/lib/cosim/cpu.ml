open Sim
module Memory = Operators.Memory

type instruction =
  | Ldi of int
  | Ld of int
  | St of int
  | Add of int
  | Sub of int
  | Addi of int
  | Jmp of int
  | Beqz of int
  | Bnez of int
  | Start
  | Wait
  | Halt

type segment = { base : int; memory : string }

type fault =
  | Unmapped_address of { pc : int; address : int }
  | Pc_out_of_range of { pc : int }

type resolved_segment = { seg_base : int; seg_size : int; store : Memory.t }

type t = {
  engine : Engine.t;
  width : int;
  program : instruction array;
  segments : resolved_segment list;
  start_sig : Engine.signal;
  mutable done_flag : unit -> bool;
  mutable acc : Bitvec.t;
  mutable pc : int;
  mutable halted : bool;
  mutable fault : fault option;
  mutable executed : int;
}

let resolve_map ~width ~memories map =
  let segments =
    List.map
      (fun { base; memory } ->
        let store = memories memory in
        if Memory.width store <> width then
          failwith
            (Printf.sprintf "cpu: memory %s is %d bits wide, CPU is %d" memory
               (Memory.width store) width);
        { seg_base = base; seg_size = Memory.size store; store })
      map
  in
  let sorted =
    List.sort (fun a b -> compare a.seg_base b.seg_base) segments
  in
  let rec overlaps = function
    | a :: (b :: _ as rest) ->
        if a.seg_base + a.seg_size > b.seg_base then
          failwith
            (Printf.sprintf "cpu: memory windows at %d and %d overlap"
               a.seg_base b.seg_base)
        else overlaps rest
    | [ _ ] | [] -> ()
  in
  overlaps sorted;
  sorted

let lookup_segment t address =
  List.find_opt
    (fun s -> address >= s.seg_base && address < s.seg_base + s.seg_size)
    t.segments

let trap t fault =
  t.fault <- Some fault;
  t.halted <- true;
  Engine.request_stop t.engine "cpu fault"

let read t address =
  match lookup_segment t address with
  | Some s -> Some (Memory.read s.store (address - s.seg_base))
  | None ->
      trap t (Unmapped_address { pc = t.pc; address });
      None

let write t address value =
  match lookup_segment t address with
  | Some s -> Memory.write s.store (address - s.seg_base) value
  | None -> trap t (Unmapped_address { pc = t.pc; address })

let execute t =
  if not t.halted then begin
    if t.pc < 0 || t.pc >= Array.length t.program then
      trap t (Pc_out_of_range { pc = t.pc })
    else begin
      let instr = t.program.(t.pc) in
      let bv v = Bitvec.create ~width:t.width v in
      let next = t.pc + 1 in
      let stalled = ref false in
      (match instr with
      | Ldi v ->
          t.acc <- bv v;
          t.pc <- next
      | Ld a -> (
          match read t a with
          | Some v ->
              t.acc <- v;
              t.pc <- next
          | None -> ())
      | St a ->
          write t a t.acc;
          if not t.halted then t.pc <- next
      | Add a -> (
          match read t a with
          | Some v ->
              t.acc <- Bitvec.add t.acc v;
              t.pc <- next
          | None -> ())
      | Sub a -> (
          match read t a with
          | Some v ->
              t.acc <- Bitvec.sub t.acc v;
              t.pc <- next
          | None -> ())
      | Addi v ->
          t.acc <- Bitvec.add t.acc (bv v);
          t.pc <- next
      | Jmp target -> t.pc <- target
      | Beqz target -> t.pc <- (if Bitvec.is_zero t.acc then target else next)
      | Bnez target -> t.pc <- (if Bitvec.is_zero t.acc then next else target)
      | Start ->
          Engine.drive t.engine t.start_sig (Bitvec.one 1);
          t.pc <- next
      | Wait ->
          if t.done_flag () then t.pc <- next else stalled := true
      | Halt ->
          t.halted <- true;
          Engine.request_stop t.engine "cpu halt");
      if not !stalled then t.executed <- t.executed + 1
    end
  end

let create engine ~clock ~width ~program ~memory_map ~memories =
  let segments = resolve_map ~width ~memories memory_map in
  let start_sig = Engine.signal engine ~name:"cpu.start" 1 in
  let t =
    {
      engine;
      width;
      program;
      segments;
      start_sig;
      done_flag = (fun () -> false);
      acc = Bitvec.zero width;
      pc = 0;
      halted = false;
      fault = None;
      executed = 0;
    }
  in
  ignore
    (Engine.on_rising_edge engine ~clock:(Clock.signal clock) ~name:"cpu"
       (fun () -> execute t));
  t

let start_line t = t.start_sig
let set_done_flag t f = t.done_flag <- f
let halted t = t.halted
let fault t = t.fault
let acc t = t.acc
let pc t = t.pc
let instructions_executed t = t.executed

let pp_fault ppf = function
  | Unmapped_address { pc; address } ->
      Format.fprintf ppf "unmapped address %d at pc=%d" address pc
  | Pc_out_of_range { pc } -> Format.fprintf ppf "pc %d outside the program" pc
