open Sim
module Elaborate = Transform.Elaborate
module Fsm_exec = Transform.Fsm_exec

type result = {
  stop : Engine.stop_reason;
  cpu_halted : bool;
  cpu_fault : Cpu.fault option;
  acc : Bitvec.t;
  instructions : int;
  cycles : int;
  accelerator_started : bool;
  accelerator_done : bool;
  accelerator_final_state : string option;
  notifications : Operators.Models.notification list;
}

let run ?(clock_period = 10) ?(max_cycles = 1_000_000) ?accelerator ~program
    ~memory_map ~width ~memories () =
  let engine = Engine.create () in
  let clock = Clock.create engine ~period:clock_period () in
  let cpu =
    Cpu.create engine ~clock ~width ~program ~memory_map ~memories
  in
  let controller, notifications =
    match accelerator with
    | None -> (None, [])
    | Some (datapath, fsm) ->
        let design = Elaborate.datapath ~engine ~clock ~memories datapath in
        let ctl =
          Fsm_exec.attach ~enable:(Cpu.start_line cpu) ~design fsm
        in
        Cpu.set_done_flag cpu (fun () -> Fsm_exec.in_done_state ctl);
        (Some ctl, [ design.Elaborate.notifications ])
  in
  let stop = Engine.run ~max_time:(clock_period * max_cycles) engine in
  {
    stop;
    cpu_halted = Cpu.halted cpu;
    cpu_fault = Cpu.fault cpu;
    acc = Cpu.acc cpu;
    instructions = Cpu.instructions_executed cpu;
    cycles = Engine.now engine / clock_period;
    accelerator_started = Engine.value_int (Cpu.start_line cpu) = 1;
    accelerator_done =
      (match controller with
      | Some ctl -> Fsm_exec.in_done_state ctl
      | None -> false);
    accelerator_final_state =
      Option.map Fsm_exec.current_state controller;
    notifications =
      List.concat_map Transform.Models_log.all notifications;
  }
