lib/cosim/harness.mli: Bitvec Cpu Fsmkit Netlist Operators Sim
