lib/cosim/harness.ml: Bitvec Clock Cpu Engine List Operators Option Sim Transform
