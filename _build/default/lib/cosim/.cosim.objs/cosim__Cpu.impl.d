lib/cosim/cpu.ml: Array Bitvec Clock Engine Format List Operators Printf Sim
