lib/cosim/cpu.mli: Bitvec Format Operators Sim
