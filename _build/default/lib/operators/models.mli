(** Simulation behaviors of the operator library.

    [instantiate] builds the behavioral model of one datapath operator
    inside a simulation engine, wiring its ports to the signals supplied
    by the elaborator. This is the OCaml analog of the Hades Java operator
    models the paper plugs into its simulations. *)

type notification =
  | Check_failed of {
      instance : string;
      time : int;
      got : Bitvec.t;
      expect : Bitvec.t;
    }
      (** A [check] operator sampled (on a rising clock edge, while
          enabled) a value other than its expectation. *)
  | Probe_sample of { instance : string; time : int; value : Bitvec.t }
      (** A [probe] operator observed a value change. *)

type env = {
  engine : Sim.Engine.t;
  clock : Sim.Engine.signal;  (** Common clock for sequential operators. *)
  find_memory : string -> Memory.t;
      (** Resolve an SRAM/ROM backing store by name; raising is fine. *)
  find_signal : string -> Sim.Engine.signal;
      (** Resolve a port name (from {!Opspec.lookup}) to its net signal. *)
  instance : string;  (** Instance id, used in names and notifications. *)
  notify : notification -> unit;
}

val instantiate : env -> kind:string -> width:int -> params:Opspec.params -> unit
(** Raises {!Opspec.Spec_error} on unknown kinds or bad parameters, and
    [Invalid_argument] if a supplied signal width disagrees with the port
    spec. *)
