lib/operators/models.ml: Array Bitvec Engine Fun List Memory Opspec Printf Sim
