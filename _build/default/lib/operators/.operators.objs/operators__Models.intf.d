lib/operators/models.mli: Bitvec Memory Opspec Sim
