lib/operators/memory.ml: Array Bitvec List Printf
