lib/operators/opspec.ml: Bitvec Format List Option Printf
