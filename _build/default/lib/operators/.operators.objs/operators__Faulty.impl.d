lib/operators/faulty.ml: Bitvec List Printf
