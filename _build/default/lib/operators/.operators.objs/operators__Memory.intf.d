lib/operators/memory.mli: Bitvec
