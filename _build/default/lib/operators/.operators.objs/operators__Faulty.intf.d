lib/operators/faulty.mli: Bitvec
