lib/operators/opspec.mli: Format
