open Sim

type notification =
  | Check_failed of {
      instance : string;
      time : int;
      got : Bitvec.t;
      expect : Bitvec.t;
    }
  | Probe_sample of { instance : string; time : int; value : Bitvec.t }

type env = {
  engine : Engine.t;
  clock : Engine.signal;
  find_memory : string -> Memory.t;
  find_signal : string -> Engine.signal;
  instance : string;
  notify : notification -> unit;
}

let port env name =
  let s = env.find_signal name in
  s

let check_port_width env name s expected =
  if Engine.width s <> expected then
    invalid_arg
      (Printf.sprintf "%s.%s: signal width %d, port expects %d" env.instance
         name (Engine.width s) expected)

let connected env (spec : Opspec.t) =
  List.map
    (fun (p : Opspec.port) ->
      let s = port env p.Opspec.port_name in
      check_port_width env p.Opspec.port_name s p.Opspec.port_width;
      (p.Opspec.port_name, s))
    spec.Opspec.ports

let binary_fn = function
  | "add" -> Bitvec.add
  | "sub" -> Bitvec.sub
  | "mul" -> Bitvec.mul
  | "divu" -> Bitvec.udiv
  | "divs" -> Bitvec.sdiv
  | "remu" -> Bitvec.urem
  | "rems" -> Bitvec.srem
  | "and" -> Bitvec.logand
  | "or" -> Bitvec.logor
  | "xor" -> Bitvec.logxor
  | "shl" -> fun a b -> Bitvec.shift_left a (Bitvec.to_int b)
  | "shrl" -> fun a b -> Bitvec.shift_right_logical a (Bitvec.to_int b)
  | "shra" -> fun a b -> Bitvec.shift_right_arith a (Bitvec.to_int b)
  | "minu" -> fun a b -> if Bitvec.to_int a <= Bitvec.to_int b then a else b
  | "maxu" -> fun a b -> if Bitvec.to_int a >= Bitvec.to_int b then a else b
  | "mins" -> fun a b -> if Bitvec.to_signed a <= Bitvec.to_signed b then a else b
  | "maxs" -> fun a b -> if Bitvec.to_signed a >= Bitvec.to_signed b then a else b
  | kind -> Opspec.failf "no binary model for kind %S" kind

let comparison_fn = function
  | "eq" -> Bitvec.eq
  | "ne" -> Bitvec.ne
  | "ltu" -> Bitvec.ult
  | "leu" -> Bitvec.ule
  | "gtu" -> Bitvec.ugt
  | "geu" -> Bitvec.uge
  | "lts" -> Bitvec.slt
  | "les" -> Bitvec.sle
  | "gts" -> Bitvec.sgt
  | "ges" -> Bitvec.sge
  | kind -> Opspec.failf "no comparison model for kind %S" kind

let unary_fn = function
  | "not" -> Bitvec.lognot
  | "neg" -> Bitvec.neg
  | "pass" -> Fun.id
  | "abs" -> fun a -> if Bitvec.msb a then Bitvec.neg a else a
  | kind -> Opspec.failf "no unary model for kind %S" kind

let comb2 env ~name a b y f =
  ignore
    (Engine.process env.engine ~name ~sensitivity:[ a; b ] (fun () ->
         Engine.drive env.engine y (f (Engine.value a) (Engine.value b))))

let comb1 env ~name a y f =
  ignore
    (Engine.process env.engine ~name ~sensitivity:[ a ] (fun () ->
         Engine.drive env.engine y (f (Engine.value a))))

let instantiate env ~kind ~width ~params =
  let spec = Opspec.lookup ~kind ~width ~params in
  let signals = connected env spec in
  let s name = List.assoc name signals in
  let pname = env.instance ^ ":" ^ kind in
  if List.mem kind Opspec.binary_alu_kinds then
    comb2 env ~name:pname (s "a") (s "b") (s "y") (binary_fn kind)
  else if List.mem kind Opspec.comparison_kinds then
    comb2 env ~name:pname (s "a") (s "b") (s "y") (comparison_fn kind)
  else if List.mem kind [ "not"; "neg"; "pass"; "abs" ] then
    comb1 env ~name:pname (s "a") (s "y") (unary_fn kind)
  else
    match kind with
    | "const" ->
        let value =
          Bitvec.create ~width (Opspec.require_int params ~kind "value")
        in
        ignore
          (Engine.process env.engine ~name:pname (fun () ->
               Engine.drive env.engine (s "y") value))
    | "zext" -> comb1 env ~name:pname (s "a") (s "y") (fun a -> Bitvec.resize a width)
    | "sext" -> comb1 env ~name:pname (s "a") (s "y") (fun a -> Bitvec.sresize a width)
    | "mux" ->
        let n = Opspec.param_int params "inputs" ~default:2 in
        let ins = Array.init n (fun i -> s (Printf.sprintf "in%d" i)) in
        let sel = s "sel" and y = s "y" in
        let body () =
          let i = min (Engine.value_int sel) (n - 1) in
          Engine.drive env.engine y (Engine.value ins.(i))
        in
        let p = Engine.process env.engine ~name:pname ~sensitivity:[ sel ] body in
        Array.iter (fun input -> Engine.add_sensitivity p input) ins
    | "reg" ->
        let d = s "d" and en = s "en" and q = s "q" in
        let init = Opspec.param_int params "init" ~default:0 in
        Engine.force env.engine q (Bitvec.create ~width init);
        ignore
          (Engine.on_rising_edge env.engine ~clock:env.clock ~name:pname
             (fun () ->
               if Engine.value_int en = 1 then
                 Engine.drive env.engine q (Engine.value d)))
    | "counter" ->
        let en = s "en" and load = s "load" and d = s "d" and q = s "q" in
        let step = Bitvec.create ~width (Opspec.param_int params "step" ~default:1) in
        ignore
          (Engine.on_rising_edge env.engine ~clock:env.clock ~name:pname
             (fun () ->
               if Engine.value_int load = 1 then
                 Engine.drive env.engine q (Engine.value d)
               else if Engine.value_int en = 1 then
                 Engine.drive env.engine q (Bitvec.add (Engine.value q) step)))
    | "sram" ->
        let memory = env.find_memory (Opspec.require_string params ~kind "memory") in
        if Memory.width memory <> width then
          invalid_arg
            (Printf.sprintf "%s: memory %s width %d <> operator width %d"
               env.instance (Memory.name memory) (Memory.width memory) width);
        let addr = s "addr" and din = s "din" and we = s "we" and dout = s "dout" in
        (* Asynchronous read port: dout always mirrors mem[addr]. *)
        ignore
          (Engine.process env.engine ~name:(pname ^ "-rd")
             ~sensitivity:[ addr ] (fun () ->
               Engine.drive env.engine dout
                 (Memory.read memory (Engine.value_int addr))));
        (* Synchronous write port. The read port is also refreshed on
           every edge: the backing store is shared (other configurations,
           a host CPU in co-simulation), so the addressed cell can change
           without the address moving. *)
        ignore
          (Engine.on_rising_edge env.engine ~clock:env.clock ~name:(pname ^ "-wr")
             (fun () ->
               let a = Engine.value_int addr in
               if Engine.value_int we = 1 then
                 Memory.write memory a (Engine.value din);
               Engine.drive env.engine dout (Memory.read memory a)))
    | "rom" ->
        let memory = env.find_memory (Opspec.require_string params ~kind "memory") in
        if Memory.width memory <> width then
          invalid_arg
            (Printf.sprintf "%s: memory %s width mismatch" env.instance
               (Memory.name memory));
        let addr = s "addr" and dout = s "dout" in
        ignore
          (Engine.process env.engine ~name:pname ~sensitivity:[ addr ]
             (fun () ->
               Engine.drive env.engine dout
                 (Memory.read memory (Engine.value_int addr))))
    | "probe" ->
        let a = s "a" in
        Engine.on_change env.engine a (fun () ->
            env.notify
              (Probe_sample
                 {
                   instance = env.instance;
                   time = Engine.now env.engine;
                   value = Engine.value a;
                 }))
    | "check" ->
        let a = s "a" and en = s "en" in
        let expect = Bitvec.create ~width (Opspec.require_int params ~kind "value") in
        let stop_on_fail =
          Opspec.param_string params "action" ~default:"record" = "stop"
        in
        ignore
          (Engine.on_rising_edge env.engine ~clock:env.clock ~name:pname
             (fun () ->
               if Engine.value_int en = 1
                  && not (Bitvec.equal (Engine.value a) expect)
               then begin
                 env.notify
                   (Check_failed
                      {
                        instance = env.instance;
                        time = Engine.now env.engine;
                        got = Engine.value a;
                        expect;
                      });
                 if stop_on_fail then
                   Engine.request_stop env.engine
                     (Printf.sprintf "check %s failed" env.instance)
               end))
    | "stop" ->
        let en = s "en" in
        let reason =
          Opspec.param_string params "reason" ~default:(env.instance ^ " fired")
        in
        ignore
          (Engine.process env.engine ~name:pname ~sensitivity:[ en ] (fun () ->
               if Engine.value_int en = 1 then
                 Engine.request_stop env.engine reason))
    | kind -> ignore (Opspec.failf "no model for kind %S" kind)
