exception Spec_error of string

type direction = In | Out

type port = { port_name : string; direction : direction; port_width : int }
type t = { kind : string; ports : port list; sequential : bool }
type params = (string * string) list

let fail fmt = Format.kasprintf (fun s -> raise (Spec_error s)) fmt
let failf fmt = fail fmt

let param_opt params key = List.assoc_opt key params

let param_int_opt params key =
  match param_opt params key with
  | None -> None
  | Some v -> (
      match int_of_string_opt v with
      | Some i -> Some i
      | None -> fail "parameter %s=%S is not an integer" key v)

let param_int params key ~default = Option.value (param_int_opt params key) ~default
let param_string params key ~default = Option.value (param_opt params key) ~default

let require_int params ~kind key =
  match param_int_opt params key with
  | Some i -> i
  | None -> fail "operator kind %s requires integer parameter %S" kind key

let require_string params ~kind key =
  match param_opt params key with
  | Some s -> s
  | None -> fail "operator kind %s requires parameter %S" kind key

let sel_width n =
  if n < 2 then 1
  else
    let rec bits v acc = if v = 0 then acc else bits (v lsr 1) (acc + 1) in
    bits (n - 1) 0

let binary_alu_kinds =
  [ "add"; "sub"; "mul"; "divu"; "divs"; "remu"; "rems";
    "and"; "or"; "xor"; "shl"; "shrl"; "shra";
    "minu"; "maxu"; "mins"; "maxs" ]

let comparison_kinds =
  [ "eq"; "ne"; "ltu"; "leu"; "gtu"; "geu"; "lts"; "les"; "gts"; "ges" ]

let unary_kinds = [ "not"; "neg"; "pass"; "abs" ]

let in_ name w = { port_name = name; direction = In; port_width = w }
let out name w = { port_name = name; direction = Out; port_width = w }

let check_width kind width =
  if width < 1 || width > Bitvec.max_width then
    fail "operator %s: invalid width %d" kind width

let lookup ~kind ~width ~params =
  check_width kind width;
  let comb ports = { kind; ports; sequential = false } in
  let seq ports = { kind; ports; sequential = true } in
  if List.mem kind binary_alu_kinds then
    comb [ in_ "a" width; in_ "b" width; out "y" width ]
  else if List.mem kind comparison_kinds then
    comb [ in_ "a" width; in_ "b" width; out "y" 1 ]
  else if List.mem kind unary_kinds then comb [ in_ "a" width; out "y" width ]
  else
    match kind with
    | "const" ->
        let (_ : int) = require_int params ~kind "value" in
        comb [ out "y" width ]
    | "zext" | "sext" ->
        let from = require_int params ~kind "from" in
        check_width (kind ^ ".from") from;
        comb [ in_ "a" from; out "y" width ]
    | "mux" ->
        let n = param_int params "inputs" ~default:2 in
        if n < 2 then fail "mux needs at least 2 inputs, got %d" n;
        let ins = List.init n (fun i -> in_ (Printf.sprintf "in%d" i) width) in
        comb (ins @ [ in_ "sel" (sel_width n); out "y" width ])
    | "reg" ->
        seq [ in_ "d" width; in_ "en" 1; out "q" width ]
    | "counter" ->
        seq [ in_ "en" 1; in_ "load" 1; in_ "d" width; out "q" width ]
    | "sram" ->
        let (_ : string) = require_string params ~kind "memory" in
        let addr_width = require_int params ~kind "addr-width" in
        check_width "sram.addr" addr_width;
        seq
          [
            in_ "addr" addr_width;
            in_ "din" width;
            in_ "we" 1;
            out "dout" width;
          ]
    | "rom" ->
        let (_ : string) = require_string params ~kind "memory" in
        let addr_width = require_int params ~kind "addr-width" in
        check_width "rom.addr" addr_width;
        comb [ in_ "addr" addr_width; out "dout" width ]
    | "probe" -> comb [ in_ "a" width ]
    | "check" ->
        (* Clocked: samples (en, a) on the rising edge, so combinational
           settling transients are never observed. *)
        let (_ : int) = require_int params ~kind "value" in
        seq [ in_ "a" width; in_ "en" 1 ]
    | "stop" -> comb [ in_ "en" 1 ]
    | kind -> fail "unknown operator kind %S" kind

let special_kinds =
  [ "const"; "zext"; "sext"; "mux"; "reg"; "counter"; "sram"; "rom";
    "probe"; "check"; "stop" ]

let all_kinds =
  List.sort compare
    (binary_alu_kinds @ comparison_kinds @ unary_kinds @ special_kinds)

let is_known kind = List.mem kind all_kinds
