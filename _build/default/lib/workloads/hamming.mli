(** The paper's second example: a Hamming(7,4) single-error-correcting
    decoder over a stream of codewords (one SRAM in, one SRAM out). *)

val source : n:int -> string
(** Program decoding [n] codewords from [input] into [output]. *)

val data_width : int

val encode : int -> int
(** Encode a 4-bit value into a 7-bit codeword (positions 1..7, parity
    bits at 1, 2 and 4 — the classic layout). *)

val decode : int -> int
(** Reference decoder: correct a single-bit error, return the 4 data
    bits. *)

val make_codewords : n:int -> seed:int -> int list
(** Deterministic stream of valid codewords, every third one corrupted by
    a single bit flip (still decodable). *)

val expected_output : int list -> int list
(** Decoded values for a codeword stream (what both golden model and
    hardware must produce). *)
