lib/workloads/kernels.ml: Array List Printf String
