lib/workloads/hamming.ml: Buffer List Printf
