lib/workloads/kernels.mli:
