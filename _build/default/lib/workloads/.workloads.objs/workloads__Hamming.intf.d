lib/workloads/hamming.mli:
