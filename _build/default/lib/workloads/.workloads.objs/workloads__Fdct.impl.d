lib/workloads/fdct.ml: Array Buffer List Printf
