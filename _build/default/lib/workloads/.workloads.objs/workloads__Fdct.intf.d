lib/workloads/fdct.mli:
