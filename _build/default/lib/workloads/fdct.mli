(** The paper's FDCT example: 8x8-block 2-D fast DCT (Chen's algorithm,
    13-bit fixed-point constants) over an input image, producing an output
    image through an intermediate image — three SRAMs, exactly as the
    paper's implementations.

    [FDCT1] maps the whole algorithm onto one configuration; [FDCT2]
    splits the row pass and the column pass into two temporal partitions
    ([partition;] marker), each a separate datapath/FSM sequenced by the
    RTG. *)

val source : ?partitioned:bool -> width_px:int -> height_px:int -> unit -> string
(** Program text. Image dimensions must be positive multiples of 8.
    [partitioned] (default false) selects the FDCT2 variant. *)

val make_image : width_px:int -> height_px:int -> seed:int -> int list
(** Deterministic pseudo-random 8-bit "image" for stimulus files. *)

val reference : width_px:int -> height_px:int -> int list -> int list
(** Plain OCaml implementation of the same integer FDCT (same wrap
    semantics at the program width); used by tests to cross-check the
    golden interpreter. *)

val data_width : int
(** Bit width the generated program declares (covers the 13-bit
    fixed-point products). *)
