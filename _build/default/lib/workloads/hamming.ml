let data_width = 16

let bit v i = (v lsr i) land 1

(* Positions are 1-indexed in the classic layout: parity bits at 1, 2, 4;
   data bits at 3, 5, 6, 7. Position p is stored in bit p-1. *)
let encode d =
  let d0 = bit d 0 and d1 = bit d 1 and d2 = bit d 2 and d3 = bit d 3 in
  let p1 = d0 lxor d1 lxor d3 in
  (* covers 3,5,7 *)
  let p2 = d0 lxor d2 lxor d3 in
  (* covers 3,6,7 *)
  let p4 = d1 lxor d2 lxor d3 in
  (* covers 5,6,7 *)
  p1 lor (p2 lsl 1) lor (d0 lsl 2) lor (p4 lsl 3) lor (d1 lsl 4)
  lor (d2 lsl 5) lor (d3 lsl 6)

let decode code =
  let b p = bit code (p - 1) in
  let s1 = b 1 lxor b 3 lxor b 5 lxor b 7 in
  let s2 = b 2 lxor b 3 lxor b 6 lxor b 7 in
  let s4 = b 4 lxor b 5 lxor b 6 lxor b 7 in
  let syn = s1 lor (s2 lsl 1) lor (s4 lsl 2) in
  let code = if syn <> 0 then code lxor (1 lsl (syn - 1)) else code in
  let b p = bit code (p - 1) in
  b 3 lor (b 5 lsl 1) lor (b 6 lsl 2) lor (b 7 lsl 3)

let source ~n =
  let buf = Buffer.create 2048 in
  let out line = Buffer.add_string buf (line ^ "\n") in
  out (Printf.sprintf "// Hamming(7,4) single-error-correcting decoder, %d codewords" n);
  out (Printf.sprintf "program hamming width %d;" data_width);
  out (Printf.sprintf "mem input[%d];" n);
  out (Printf.sprintf "mem output[%d];" n);
  List.iter
    (fun v -> out (Printf.sprintf "var %s;" v))
    [ "i"; "code"; "b1"; "b2"; "b3"; "b4"; "b5"; "b6"; "b7";
      "s1"; "s2"; "s4"; "syn"; "data" ];
  out "";
  out (Printf.sprintf "for (i = 0; i < %d; i = i + 1) {" n);
  out "  code = input[i];";
  out "  b1 = code & 1;";
  out "  b2 = (code >> 1) & 1;";
  out "  b3 = (code >> 2) & 1;";
  out "  b4 = (code >> 3) & 1;";
  out "  b5 = (code >> 4) & 1;";
  out "  b6 = (code >> 5) & 1;";
  out "  b7 = (code >> 6) & 1;";
  out "  s1 = b1 ^ b3 ^ b5 ^ b7;";
  out "  s2 = b2 ^ b3 ^ b6 ^ b7;";
  out "  s4 = b4 ^ b5 ^ b6 ^ b7;";
  out "  syn = s1 + s2 * 2 + s4 * 4;";
  out "  if (syn != 0) {";
  out "    code = code ^ (1 << (syn - 1));";
  out "  }";
  out "  b3 = (code >> 2) & 1;";
  out "  b5 = (code >> 4) & 1;";
  out "  b6 = (code >> 5) & 1;";
  out "  b7 = (code >> 6) & 1;";
  out "  data = b3 + b5 * 2 + b6 * 4 + b7 * 8;";
  out "  output[i] = data;";
  out "}";
  Buffer.contents buf

let make_codewords ~n ~seed =
  let state = ref (seed land 0x3FFFFFFF) in
  let next () =
    state := (!state * 1103515245 + 12345) land 0x3FFFFFFF;
    !state lsr 12
  in
  List.init n (fun i ->
      let code = encode (next () land 0xF) in
      if i mod 3 = 2 then code lxor (1 lsl (next () mod 7)) else code)

let expected_output codewords = List.map decode codewords
