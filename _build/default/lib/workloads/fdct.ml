let data_width = 32

(* 13-bit fixed-point cosine constants (Chen's fast DCT):
   c_k = round(cos(k*pi/16) * 8192). *)
let c1 = 8035
let c2 = 7568
let c3 = 6811
let c4 = 5793
let c5 = 4551
let c6 = 3135
let c7 = 1598

(* The shared 8-point butterfly, reading and writing x0..x7. *)
let butterfly_lines =
  [
    "    s0 = x0 + x7;  s7 = x0 - x7;";
    "    s1 = x1 + x6;  s6 = x1 - x6;";
    "    s2 = x2 + x5;  s5 = x2 - x5;";
    "    s3 = x3 + x4;  s4 = x3 - x4;";
    "    t0 = s0 + s3;  t3 = s0 - s3;";
    "    t1 = s1 + s2;  t2 = s1 - s2;";
    Printf.sprintf "    x0 = ((t0 + t1) * %d) >> 13;" c4;
    Printf.sprintf "    x4 = ((t0 - t1) * %d) >> 13;" c4;
    Printf.sprintf "    x2 = (t3 * %d + t2 * %d) >> 13;" c2 c6;
    Printf.sprintf "    x6 = (t3 * %d - t2 * %d) >> 13;" c6 c2;
    Printf.sprintf "    z1 = ((s6 - s5) * %d) >> 13;" c4;
    Printf.sprintf "    z2 = ((s6 + s5) * %d) >> 13;" c4;
    "    w4 = s4 + z1;  w5 = s4 - z1;";
    "    w6 = s7 - z2;  w7 = s7 + z2;";
    Printf.sprintf "    x1 = (w7 * %d + w4 * %d) >> 13;" c1 c7;
    Printf.sprintf "    x7 = (w7 * %d - w4 * %d) >> 13;" c7 c1;
    Printf.sprintf "    x5 = (w6 * %d + w5 * %d) >> 13;" c5 c3;
    Printf.sprintf "    x3 = (w6 * %d - w5 * %d) >> 13;" c3 c5;
  ]

let source ?(partitioned = false) ~width_px ~height_px () =
  if width_px <= 0 || width_px mod 8 <> 0 || height_px <= 0 || height_px mod 8 <> 0
  then invalid_arg "Fdct.source: dimensions must be positive multiples of 8";
  let n = width_px * height_px in
  let buf = Buffer.create 4096 in
  let out line = Buffer.add_string buf (line ^ "\n") in
  out (Printf.sprintf "// 8x8-block 2-D fast DCT (Chen), %dx%d image%s"
         width_px height_px
         (if partitioned then ", two temporal partitions" else ""));
  out (Printf.sprintf "program fdct%s width %d;"
         (if partitioned then "2" else "1") data_width);
  out (Printf.sprintf "mem input[%d];" n);
  out (Printf.sprintf "mem temp[%d];" n);
  out (Printf.sprintf "mem output[%d];" n);
  List.iter
    (fun v -> out (Printf.sprintf "var %s;" v))
    [
      "row"; "col"; "blk"; "base";
      "x0"; "x1"; "x2"; "x3"; "x4"; "x5"; "x6"; "x7";
      "s0"; "s1"; "s2"; "s3"; "s4"; "s5"; "s6"; "s7";
      "t0"; "t1"; "t2"; "t3"; "z1"; "z2"; "w4"; "w5"; "w6"; "w7";
    ];
  out "";
  out "// Row pass: 1-D DCT of every 8-pixel row segment, input -> temp.";
  out (Printf.sprintf "for (row = 0; row < %d; row = row + 1) {" height_px);
  out (Printf.sprintf "  for (blk = 0; blk < %d; blk = blk + 1) {" (width_px / 8));
  out (Printf.sprintf "    base = row * %d + blk * 8;" width_px);
  for k = 0 to 7 do
    out (Printf.sprintf "    x%d = input[base + %d];" k k)
  done;
  List.iter out butterfly_lines;
  for k = 0 to 7 do
    out (Printf.sprintf "    temp[base + %d] = x%d;" k k)
  done;
  out "  }";
  out "}";
  out "";
  if partitioned then out "partition;";
  out "// Column pass: 1-D DCT down every 8-pixel column segment, temp -> output.";
  out (Printf.sprintf "for (col = 0; col < %d; col = col + 1) {" width_px);
  out (Printf.sprintf "  for (blk = 0; blk < %d; blk = blk + 1) {" (height_px / 8));
  out (Printf.sprintf "    base = blk * %d + col;" (8 * width_px));
  for k = 0 to 7 do
    out (Printf.sprintf "    x%d = temp[base + %d];" k (k * width_px))
  done;
  List.iter out butterfly_lines;
  for k = 0 to 7 do
    out (Printf.sprintf "    output[base + %d] = x%d;" (k * width_px) k)
  done;
  out "  }";
  out "}";
  Buffer.contents buf

let make_image ~width_px ~height_px ~seed =
  (* Small multiplicative congruential generator; 8-bit pixels. *)
  let state = ref (seed land 0x3FFFFFFF) in
  List.init (width_px * height_px) (fun _ ->
      state := (!state * 1103515245 + 12345) land 0x3FFFFFFF;
      (!state lsr 16) land 0xFF)

(* --- independent OCaml reference ------------------------------------- *)

let mask32 = (1 lsl data_width) - 1

let wrap v =
  let v = v land mask32 in
  if v land (1 lsl (data_width - 1)) <> 0 then v - (mask32 + 1) else v

let ( +% ) a b = wrap (a + b)
let ( -% ) a b = wrap (a - b)
let ( *% ) a b = wrap (a * b)
let ( >>% ) a n = wrap (wrap a asr n)

let butterfly x =
  let s0 = x.(0) +% x.(7) and s7 = x.(0) -% x.(7) in
  let s1 = x.(1) +% x.(6) and s6 = x.(1) -% x.(6) in
  let s2 = x.(2) +% x.(5) and s5 = x.(2) -% x.(5) in
  let s3 = x.(3) +% x.(4) and s4 = x.(3) -% x.(4) in
  let t0 = s0 +% s3 and t3 = s0 -% s3 in
  let t1 = s1 +% s2 and t2 = s1 -% s2 in
  x.(0) <- (t0 +% t1) *% c4 >>% 13;
  x.(4) <- (t0 -% t1) *% c4 >>% 13;
  x.(2) <- (t3 *% c2 +% (t2 *% c6)) >>% 13;
  x.(6) <- (t3 *% c6 -% (t2 *% c2)) >>% 13;
  let z1 = (s6 -% s5) *% c4 >>% 13 in
  let z2 = (s6 +% s5) *% c4 >>% 13 in
  let w4 = s4 +% z1 and w5 = s4 -% z1 in
  let w6 = s7 -% z2 and w7 = s7 +% z2 in
  x.(1) <- (w7 *% c1 +% (w4 *% c7)) >>% 13;
  x.(7) <- (w7 *% c7 -% (w4 *% c1)) >>% 13;
  x.(5) <- (w6 *% c5 +% (w5 *% c3)) >>% 13;
  x.(3) <- (w6 *% c3 -% (w5 *% c5)) >>% 13

let reference ~width_px ~height_px pixels =
  let n = width_px * height_px in
  let input = Array.of_list pixels in
  if Array.length input <> n then invalid_arg "Fdct.reference: size mismatch";
  let temp = Array.make n 0 and output = Array.make n 0 in
  let x = Array.make 8 0 in
  for row = 0 to height_px - 1 do
    for blk = 0 to (width_px / 8) - 1 do
      let base = (row * width_px) + (blk * 8) in
      for k = 0 to 7 do
        x.(k) <- wrap input.(base + k)
      done;
      butterfly x;
      for k = 0 to 7 do
        temp.(base + k) <- x.(k)
      done
    done
  done;
  for col = 0 to width_px - 1 do
    for blk = 0 to (height_px / 8) - 1 do
      let base = (blk * 8 * width_px) + col in
      for k = 0 to 7 do
        x.(k) <- temp.(base + (k * width_px))
      done;
      butterfly x;
      for k = 0 to 7 do
        output.(base + (k * width_px)) <- x.(k)
      done
    done
  done;
  Array.to_list (Array.map (fun v -> v land mask32) output)
