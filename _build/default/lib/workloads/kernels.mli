(** Small kernels used by tests, examples and benches beyond the paper's
    two case studies. Each comes with an OCaml reference for its output
    memory. *)

val vecadd_source : n:int -> string
(** [c[i] = a[i] + b[i]] at width 16. *)

val vecadd_reference : int list -> int list -> int list

val sum_source : n:int -> string
(** Sums [input] into [output[0]] (width 32). *)

val sum_reference : int list -> int

val gcd_source : unit -> string
(** Euclid by subtraction over pairs in [input] (a at 2i, b at 2i+1 for 8
    pairs), results into [output]. Exercises nested while/if. *)

val gcd_reference : int list -> int list

val sort_source : n:int -> string
(** In-place bubble sort of [data] (width 16, unsigned values < 2^15).
    Exercises nested loops, memory swaps, conditions. *)

val sort_reference : int list -> int list

val fir_source : taps:int list -> n:int -> string
(** FIR filter: [output[i] = sum_k taps[k] * input[i - k]] (zero-padded
    history) at width 32 — the classic DSP kernel. The coefficients are
    baked into the program as an initialized memory
    ([mem taps[k] = { ... };]). *)

val fir_reference : taps:int list -> int list -> int list

val edge_detect_source : width_px:int -> height_px:int -> threshold:int -> string
(** Horizontal-gradient edge detector: |in[x+1] - in[x]| >= threshold
    (image processing scenario from the paper's motivation). *)

val edge_detect_reference :
  width_px:int -> height_px:int -> threshold:int -> int list -> int list

val divmod_source : pairs:int -> string
(** Per pair [(input[2i], input[2i+1])], signed quotient into [q[i]] and
    remainder into [r[i]] at width 8. Built to exercise the division
    edge-case convention ({!Bitvec.sdiv}): include zero divisors and the
    overflow pair [(128, 255)] (i.e. [-128 / -1]) in the stimuli. *)

val divmod_reference : int list -> (int * int) list
(** [(quotient, remainder)] per pair, 8-bit wrapped, computed
    independently of [Bitvec] (RISC-V convention: [x/0 = all-ones],
    [x%0 = x], overflow wraps to the dividend). *)
