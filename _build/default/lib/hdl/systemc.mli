(** SystemC emission — the third output language the paper names
    ("Verilog, VHDL, SystemC, etc.").

    The datapath becomes an [SC_MODULE] with one [SC_METHOD] for the
    combinational cloud and one clocked [SC_METHOD] for the sequential
    elements; the FSM a clocked two-process module; [system] a top module
    binding the two by signal name. Data travels as [sc_uint<W>]. *)

val datapath : Netlist.Datapath.t -> string
val fsm : Fsmkit.Fsm.t -> string
val system : Netlist.Datapath.t -> Fsmkit.Fsm.t -> string
