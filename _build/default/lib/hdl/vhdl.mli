(** VHDL-93 emission (ieee.numeric_std) — the second built-in output
    language. Same structure as {!Verilog}: datapath entity, two-process
    FSM entity, and a top-level wiring both. All data ports are
    [unsigned] vectors; test-aid operators emit [assert]/[report]
    statements. *)

val datapath : Netlist.Datapath.t -> string
val fsm : Fsmkit.Fsm.t -> string
val system : Netlist.Datapath.t -> Fsmkit.Fsm.t -> string
