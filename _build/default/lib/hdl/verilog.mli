(** Verilog-2001 emission — one of the user-pluggable output languages the
    paper supports through custom XSL rules.

    The datapath becomes a structural/behavioral module (clock, control
    inputs, status outputs), the FSM a two-process state machine, and
    [system] a top module wiring the two by signal name. Test-aid
    operators (probe/check/stop) emit [$display]-based monitors inside
    [`ifndef SYNTHESIS] regions. *)

val sanitize : string -> string
(** Map an arbitrary identifier to HDL-safe characters (shared by the
    emitters). *)

val datapath : Netlist.Datapath.t -> string
(** Raises {!Netlist.Datapath.Invalid} on malformed inputs. *)

val fsm : Fsmkit.Fsm.t -> string
val system : Netlist.Datapath.t -> Fsmkit.Fsm.t -> string
(** The two modules plus a [<name>_top] wiring them together. *)
