lib/hdl/verilog.mli: Fsmkit Netlist
