lib/hdl/vhdl.mli: Fsmkit Netlist
