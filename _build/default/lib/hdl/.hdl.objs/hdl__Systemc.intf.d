lib/hdl/systemc.mli: Fsmkit Netlist
