lib/hdl/vhdl.ml: Buffer Fsmkit Hashtbl List Netlist Operators Printf String
