lib/hdl/verilog.ml: Buffer Fsmkit Hashtbl List Netlist Operators Printf String
