lib/hdl/systemc.ml: Buffer Fsmkit Hashtbl List Netlist Operators Printf String Verilog
