exception Schema_error of string

let fail msg = raise (Schema_error msg)
let failf fmt = Format.kasprintf fail fmt

let as_element = function
  | Xml.Element e -> e
  | Xml.Text _ -> fail "expected an element, found character data"

let tag_is tag = function
  | Xml.Element e -> e.Xml.tag = tag
  | Xml.Text _ -> false

let children e tag =
  List.filter_map
    (function
      | Xml.Element c when c.Xml.tag = tag -> Some c
      | Xml.Element _ | Xml.Text _ -> None)
    e.Xml.children

let child_opt e tag =
  match children e tag with
  | [] -> None
  | [ c ] -> Some c
  | _ :: _ -> failf "<%s>: expected at most one <%s> child" e.Xml.tag tag

let child e tag =
  match child_opt e tag with
  | Some c -> c
  | None -> failf "<%s>: missing required <%s> child" e.Xml.tag tag

let attr_opt e name = List.assoc_opt name e.Xml.attrs

let attr e name =
  match attr_opt e name with
  | Some v -> v
  | None -> failf "<%s>: missing required attribute %S" e.Xml.tag name

let attr_int e name =
  let v = attr e name in
  match int_of_string_opt v with
  | Some i -> i
  | None -> failf "<%s %s=%S>: expected an integer" e.Xml.tag name v

let attr_int_opt e name =
  match attr_opt e name with
  | None -> None
  | Some v -> (
      match int_of_string_opt v with
      | Some i -> Some i
      | None -> failf "<%s %s=%S>: expected an integer" e.Xml.tag name v)

let attr_int_default e name default =
  Option.value (attr_int_opt e name) ~default

let attr_bool_default e name default =
  match attr_opt e name with
  | None -> default
  | Some ("true" | "1") -> true
  | Some ("false" | "0") -> false
  | Some v -> failf "<%s %s=%S>: expected a boolean" e.Xml.tag name v

let text_content e =
  List.filter_map
    (function Xml.Text s -> Some s | Xml.Element _ -> None)
    e.Xml.children
  |> String.concat ""
