type t = Element of element | Text of string

and element = {
  tag : string;
  attrs : (string * string) list;
  children : t list;
}

let element ?(attrs = []) ?(children = []) tag = Element { tag; attrs; children }
let text s = Text s

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_attrs buf attrs =
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf k;
      Buffer.add_string buf "=\"";
      Buffer.add_string buf (escape v);
      Buffer.add_char buf '"')
    attrs

(* Emission layout: an element whose children are all elements goes multi-
   line; an element with text (or mixed) content stays on a single line so
   whitespace round-trips. *)
let rec add_node buf ~indent ~level node =
  let pad = String.make (indent * level) ' ' in
  match node with
  | Text s ->
      Buffer.add_string buf pad;
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '\n'
  | Element { tag; attrs; children } -> (
      Buffer.add_string buf pad;
      Buffer.add_char buf '<';
      Buffer.add_string buf tag;
      add_attrs buf attrs;
      match children with
      | [] -> Buffer.add_string buf "/>\n"
      | children when List.for_all (function Text _ -> true | Element _ -> false) children ->
          Buffer.add_char buf '>';
          List.iter
            (function Text s -> Buffer.add_string buf (escape s) | Element _ -> ())
            children;
          Buffer.add_string buf "</";
          Buffer.add_string buf tag;
          Buffer.add_string buf ">\n"
      | children ->
          Buffer.add_string buf ">\n";
          List.iter (add_node buf ~indent ~level:(level + 1)) children;
          Buffer.add_string buf pad;
          Buffer.add_string buf "</";
          Buffer.add_string buf tag;
          Buffer.add_string buf ">\n")

let to_string ?(indent = 2) node =
  let buf = Buffer.create 1024 in
  add_node buf ~indent ~level:0 node;
  (* Drop the trailing newline for a value-like string. *)
  let s = Buffer.contents buf in
  if String.length s > 0 && s.[String.length s - 1] = '\n' then
    String.sub s 0 (String.length s - 1)
  else s

let declaration = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>"

let to_channel oc node =
  output_string oc declaration;
  output_char oc '\n';
  output_string oc (to_string node);
  output_char oc '\n'

let save path node =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel oc node)

let pp ppf node = Format.pp_print_string ppf (to_string node)

let line_count node =
  let s = to_string node in
  let lines = ref 2 (* declaration + final line *) in
  String.iter (fun c -> if c = '\n' then incr lines) s;
  !lines
