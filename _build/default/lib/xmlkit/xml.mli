(** XML document trees and serialization.

    A pragmatic XML subset sufficient for the datapath / FSM / RTG dialects:
    elements, attributes, character data, comments (skipped on parse), and
    the five predefined entities. No namespaces, DTDs, or processing
    instruction semantics ([<?...?>] is skipped). *)

type t =
  | Element of element
  | Text of string  (** Character data, already entity-decoded. *)

and element = {
  tag : string;
  attrs : (string * string) list;  (** In document order; values decoded. *)
  children : t list;
}

val element : ?attrs:(string * string) list -> ?children:t list -> string -> t
(** [element tag] builds an element node. *)

val text : string -> t

val escape : string -> string
(** Encode the five predefined entities for use in content or attributes. *)

val to_string : ?indent:int -> t -> string
(** Serialize with the given [indent] step (default 2). Text-only elements
    are kept on one line; mixed content is emitted verbatim. *)

val to_channel : out_channel -> t -> unit
(** Serialize with an XML declaration and trailing newline. *)

val save : string -> t -> unit
(** [save path doc] writes the document to [path]. *)

val pp : Format.formatter -> t -> unit

val line_count : t -> int
(** Number of lines {!to_channel} would emit, declaration included. Used by
    the Table I metrics ("loXML" columns). *)
