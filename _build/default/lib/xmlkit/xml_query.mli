(** Typed accessors over {!Xml.t} trees.

    The datapath / FSM / RTG readers use these to turn schema violations
    into uniform {!Schema_error} exceptions with a path-like context. *)

exception Schema_error of string

val fail : string -> 'a
(** Raise {!Schema_error} with the given message. *)

val as_element : Xml.t -> Xml.element
(** Raises {!Schema_error} on a text node. *)

val tag_is : string -> Xml.t -> bool

val children : Xml.element -> string -> Xml.element list
(** Child elements with the given tag, in order. *)

val child_opt : Xml.element -> string -> Xml.element option
val child : Xml.element -> string -> Xml.element
(** Raises {!Schema_error} when absent or ambiguous. *)

val attr_opt : Xml.element -> string -> string option
val attr : Xml.element -> string -> string
(** Required attribute; raises {!Schema_error} when absent. *)

val attr_int : Xml.element -> string -> int
val attr_int_opt : Xml.element -> string -> int option
val attr_int_default : Xml.element -> string -> int -> int
val attr_bool_default : Xml.element -> string -> bool -> bool
(** Booleans accept "true"/"false"/"1"/"0". *)

val text_content : Xml.element -> string
(** Concatenated character data of the element (direct children only). *)
