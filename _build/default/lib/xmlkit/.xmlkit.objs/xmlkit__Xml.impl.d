lib/xmlkit/xml.ml: Buffer Format Fun List String
