lib/xmlkit/xml_query.ml: Format List Option String Xml
