lib/xmlkit/xml_query.mli: Xml
