lib/xmlkit/xml_parser.ml: Buffer Char Format Fun List Printf String Xml
