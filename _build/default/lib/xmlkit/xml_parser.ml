exception Parse_error of { line : int; col : int; message : string }

let error_to_string = function
  | Parse_error { line; col; message } ->
      Some (Printf.sprintf "XML parse error at %d:%d: %s" line col message)
  | _ -> None

(* A hand-rolled scanner over the input string. [pos] is the cursor;
   line/col are derived lazily for error messages only. *)
type state = { src : string; mutable pos : int }

let position st =
  let line = ref 1 and col = ref 1 in
  for i = 0 to min st.pos (String.length st.src) - 1 do
    if st.src.[i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col
  done;
  (!line, !col)

let fail st fmt =
  Format.kasprintf
    (fun message ->
      let line, col = position st in
      raise (Parse_error { line; col; message }))
    fmt

let eof st = st.pos >= String.length st.src
let peek st = if eof st then '\000' else st.src.[st.pos]
let advance st = st.pos <- st.pos + 1

let looking_at st prefix =
  let n = String.length prefix in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = prefix

let expect st prefix =
  if looking_at st prefix then st.pos <- st.pos + String.length prefix
  else fail st "expected %S" prefix

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let skip_spaces st =
  while (not (eof st)) && is_space (peek st) do
    advance st
  done

let skip_until st close =
  match
    (* Find [close] starting at the cursor. *)
    let rec find i =
      if i + String.length close > String.length st.src then None
      else if String.sub st.src i (String.length close) = close then Some i
      else find (i + 1)
    in
    find st.pos
  with
  | Some i -> st.pos <- i + String.length close
  | None -> fail st "unterminated construct (missing %S)" close

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.' || c = ':'

let read_name st =
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  if st.pos = start then fail st "expected a name";
  String.sub st.src start (st.pos - start)

let decode_entity st =
  (* Cursor sits just after '&'. *)
  let start = st.pos in
  while (not (eof st)) && peek st <> ';' && st.pos - start < 10 do
    advance st
  done;
  if peek st <> ';' then fail st "unterminated entity reference";
  let name = String.sub st.src start (st.pos - start) in
  advance st;
  match name with
  | "lt" -> "<"
  | "gt" -> ">"
  | "amp" -> "&"
  | "quot" -> "\""
  | "apos" -> "'"
  | _ ->
      if String.length name > 1 && name.[0] = '#' then
        let code =
          let digits = String.sub name 1 (String.length name - 1) in
          let digits =
            if String.length digits > 0 && (digits.[0] = 'x' || digits.[0] = 'X')
            then "0x" ^ String.sub digits 1 (String.length digits - 1)
            else digits
          in
          match int_of_string_opt digits with
          | Some c when c >= 0 && c < 128 -> c
          | Some _ | None -> fail st "unsupported character reference &%s;" name
        in
        String.make 1 (Char.chr code)
      else fail st "unknown entity &%s;" name

let read_text_until st stop_char =
  let buf = Buffer.create 32 in
  let rec loop () =
    if eof st then fail st "unexpected end of input in character data"
    else
      match peek st with
      | c when c = stop_char -> Buffer.contents buf
      | '&' ->
          advance st;
          Buffer.add_string buf (decode_entity st);
          loop ()
      | c ->
          advance st;
          Buffer.add_char buf c;
          loop ()
  in
  loop ()

let read_attr_value st =
  skip_spaces st;
  expect st "=";
  skip_spaces st;
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then fail st "expected a quoted attribute value";
  advance st;
  let v = read_text_until st quote in
  advance st;
  v

let rec skip_misc st =
  skip_spaces st;
  if looking_at st "<!--" then begin
    st.pos <- st.pos + 4;
    skip_until st "-->";
    skip_misc st
  end
  else if looking_at st "<?" then begin
    st.pos <- st.pos + 2;
    skip_until st "?>";
    skip_misc st
  end
  else if looking_at st "<!" then begin
    (* DOCTYPE and friends: skip to the matching '>'. *)
    st.pos <- st.pos + 2;
    skip_until st ">";
    skip_misc st
  end

let is_blank s = String.for_all is_space s

let rec parse_element st =
  expect st "<";
  let tag = read_name st in
  let rec attrs acc =
    skip_spaces st;
    if looking_at st "/>" then begin
      st.pos <- st.pos + 2;
      Xml.Element { tag; attrs = List.rev acc; children = [] }
    end
    else if looking_at st ">" then begin
      advance st;
      let children = parse_children st tag in
      Xml.Element { tag; attrs = List.rev acc; children }
    end
    else
      let name = read_name st in
      let value = read_attr_value st in
      attrs ((name, value) :: acc)
  in
  attrs []

and parse_children st tag =
  let close = "</" ^ tag in
  let rec loop acc =
    if eof st then fail st "missing closing tag </%s>" tag
    else if looking_at st close then begin
      st.pos <- st.pos + String.length close;
      skip_spaces st;
      expect st ">";
      List.rev acc
    end
    else if looking_at st "<!--" then begin
      st.pos <- st.pos + 4;
      skip_until st "-->";
      loop acc
    end
    else if looking_at st "<" then loop (parse_element st :: acc)
    else
      let txt = read_text_until st '<' in
      if is_blank txt then loop acc else loop (Xml.Text txt :: acc)
  in
  loop []

let parse_string src =
  let st = { src; pos = 0 } in
  skip_misc st;
  if not (looking_at st "<") then fail st "expected a root element";
  let root = parse_element st in
  skip_misc st;
  if not (eof st) then fail st "trailing content after the root element";
  root

let parse_file path =
  let ic = open_in_bin path in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse_string src
