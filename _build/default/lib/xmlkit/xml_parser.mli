(** Parsing of the XML subset described in {!Xml}.

    Comments, XML declarations and processing instructions are skipped.
    Whitespace-only character data between elements is dropped; any other
    character data is kept (entity-decoded). *)

exception Parse_error of { line : int; col : int; message : string }

val error_to_string : exn -> string option
(** Human-readable rendering of {!Parse_error}; [None] on other exceptions. *)

val parse_string : string -> Xml.t
(** Parse a complete document (a single root element). Raises
    {!Parse_error}. *)

val parse_file : string -> Xml.t
(** Raises {!Parse_error} or [Sys_error]. *)
