open Sim

type t = {
  oc : out_channel;
  mutable owns_channel : bool;
  engine : Engine.t;
  mutable last_time : int;
  mutable changes : int;
  mutable closed : bool;
}

(* VCD identifier codes: base-94 strings over the printable range. *)
let id_code index =
  let rec build i acc =
    let c = Char.chr (33 + (i mod 94)) in
    let acc = String.make 1 c ^ acc in
    if i < 94 then acc else build ((i / 94) - 1) acc
  in
  build index ""

let sanitize name =
  String.map (fun c -> if c = ' ' || c = '$' then '_' else c) name

let emit_value t code signal =
  let v = Engine.value signal in
  if Bitvec.width v = 1 then
    Printf.fprintf t.oc "%d%s\n" (Bitvec.to_int v) code
  else Printf.fprintf t.oc "b%s %s\n" (Bitvec.to_binary_string v) code

let timestamp t =
  let now = Engine.now t.engine in
  if now <> t.last_time then begin
    Printf.fprintf t.oc "#%d\n" now;
    t.last_time <- now
  end

let create ?(scope = "top") oc engine signals =
  let t =
    {
      oc;
      owns_channel = false;
      engine;
      last_time = min_int;
      changes = 0;
      closed = false;
    }
  in
  Printf.fprintf oc "$version fpgatest simulation $end\n";
  Printf.fprintf oc "$timescale 1ns $end\n";
  Printf.fprintf oc "$scope module %s $end\n" (sanitize scope);
  let coded =
    List.mapi
      (fun i (name, signal) ->
        let code = id_code i in
        Printf.fprintf oc "$var wire %d %s %s $end\n" (Engine.width signal)
          code (sanitize name);
        (code, signal))
      signals
  in
  Printf.fprintf oc "$upscope $end\n$enddefinitions $end\n";
  Printf.fprintf oc "$dumpvars\n";
  List.iter (fun (code, signal) -> emit_value t code signal) coded;
  Printf.fprintf oc "$end\n";
  timestamp t;
  List.iter
    (fun (code, signal) ->
      Engine.on_change engine signal (fun () ->
          if not t.closed then begin
            timestamp t;
            emit_value t code signal;
            t.changes <- t.changes + 1
          end))
    coded;
  t

let create_file ?scope path engine signals =
  let oc = open_out path in
  let t = create ?scope oc engine signals in
  t.owns_channel <- true;
  t

let changes_written t = t.changes

let close t =
  if not t.closed then begin
    t.closed <- true;
    flush t.oc;
    if t.owns_channel then close_out t.oc
  end
