(** Value Change Dump (IEEE 1364) waveform writer.

    Attach signals of a running simulation and get a standard [.vcd] file
    viewable in GTKWave & co. Timescale is 1 ns per engine tick. *)

type t

val create :
  ?scope:string -> out_channel -> Sim.Engine.t ->
  (string * Sim.Engine.signal) list -> t
(** [create oc engine signals] writes the VCD header for the named
    signals (names may contain dots — they are flattened) and registers
    change hooks. The initial values are dumped at the current simulation
    time. The channel remains owned by the caller; call {!close} before
    closing it. *)

val create_file :
  ?scope:string -> string -> Sim.Engine.t ->
  (string * Sim.Engine.signal) list -> t
(** Like {!create} but opens (and on {!close}, closes) the file. *)

val changes_written : t -> int

val close : t -> unit
(** Flush buffered output and, for {!create_file}, close the file.
    Idempotent; the hooks become no-ops afterwards. *)
