module Dp = Netlist.Datapath
module Fsm = Fsmkit.Fsm
module Guard = Fsmkit.Guard
module Dot = Dotkit.Dot

let memory_kinds = [ "sram"; "rom" ]
let test_aid_kinds = [ "probe"; "check"; "stop" ]

let datapath (dp : Dp.t) =
  let g =
    Dot.create dp.Dp.dp_name
      ~graph_attrs:[ ("rankdir", "LR"); ("fontname", "Helvetica") ]
      ~node_defaults:[ ("fontname", "Helvetica"); ("fontsize", "10") ]
  in
  List.iter
    (fun (op : Dp.operator) ->
      let label = Printf.sprintf "%s\n%s/%d" op.Dp.id op.Dp.kind op.Dp.width in
      let attrs =
        if List.mem op.Dp.kind memory_kinds then
          [ ("shape", "box3d"); ("label", label) ]
        else if List.mem op.Dp.kind test_aid_kinds then
          [ ("shape", "box"); ("style", "dashed"); ("label", label) ]
        else if op.Dp.kind = "const" then
          [ ("shape", "plaintext"); ("label", label) ]
        else [ ("shape", "box"); ("label", label) ]
      in
      Dot.add_node g op.Dp.id ~attrs)
    dp.Dp.operators;
  List.iter
    (fun (c : Dp.control) ->
      Dot.add_node g ("ctl." ^ c.Dp.ctl_name)
        ~attrs:
          [
            ("shape", "house");
            ("label", Printf.sprintf "%s/%d" c.Dp.ctl_name c.Dp.ctl_width);
          ])
    dp.Dp.controls;
  List.iter
    (fun (st : Dp.status) ->
      let id = "st." ^ st.Dp.st_name in
      Dot.add_node g id
        ~attrs:[ ("shape", "invhouse"); ("label", st.Dp.st_name) ];
      Dot.add_edge g st.Dp.st_source.Dp.inst id
        ~attrs:[ ("style", "dotted") ])
    dp.Dp.statuses;
  List.iter
    (fun (n : Dp.net) ->
      let src =
        match n.Dp.source with
        | Dp.From_op ep -> ep.Dp.inst
        | Dp.From_control name -> "ctl." ^ name
      in
      List.iter
        (fun (ep : Dp.endpoint) ->
          Dot.add_edge g src ep.Dp.inst
            ~attrs:
              [
                ("label", Printf.sprintf "%s/%d" n.Dp.net_id n.Dp.net_width);
                ("headlabel", ep.Dp.port);
                ("labelfontsize", "8");
              ])
        n.Dp.sinks)
    dp.Dp.nets;
  g

let fsm (m : Fsm.t) =
  let g =
    Dot.create m.Fsm.fsm_name
      ~graph_attrs:[ ("rankdir", "TB"); ("fontname", "Helvetica") ]
      ~node_defaults:[ ("fontname", "Helvetica"); ("fontsize", "10") ]
  in
  Dot.add_node g "__entry" ~attrs:[ ("shape", "point") ];
  List.iter
    (fun (st : Fsm.state) ->
      let label =
        match st.Fsm.settings with
        | [] -> st.Fsm.sname
        | settings ->
            st.Fsm.sname ^ "\n"
            ^ String.concat "\n"
                (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) settings)
      in
      Dot.add_node g st.Fsm.sname
        ~attrs:
          [
            ("shape", (if st.Fsm.is_done then "doublecircle" else "circle"));
            ("label", label);
          ])
    m.Fsm.states;
  Dot.add_edge g "__entry" m.Fsm.initial;
  List.iter
    (fun (st : Fsm.state) ->
      List.iter
        (fun (tr : Fsm.transition) ->
          let label = Guard.to_string tr.Fsm.guard in
          Dot.add_edge g st.Fsm.sname tr.Fsm.target
            ~attrs:(if label = "" then [] else [ ("label", label) ]))
        st.Fsm.transitions)
    m.Fsm.states;
  g

let rtg (r : Rtg.t) =
  let g =
    Dot.create r.Rtg.rtg_name
      ~graph_attrs:[ ("rankdir", "LR"); ("fontname", "Helvetica") ]
      ~node_defaults:[ ("fontname", "Helvetica"); ("shape", "box") ]
  in
  Dot.add_node g "__entry" ~attrs:[ ("shape", "point") ];
  List.iter
    (fun (c : Rtg.configuration) ->
      Dot.add_node g c.Rtg.cfg_name
        ~attrs:
          [
            ( "label",
              Printf.sprintf "%s\ndp: %s\nfsm: %s" c.Rtg.cfg_name
                c.Rtg.datapath_ref c.Rtg.fsm_ref );
          ])
    r.Rtg.configurations;
  Dot.add_edge g "__entry" r.Rtg.initial;
  List.iter
    (fun (tr : Rtg.transition) ->
      Dot.add_edge g tr.Rtg.src tr.Rtg.dst
        ~attrs:[ ("label", "done") ])
    r.Rtg.transitions;
  g
