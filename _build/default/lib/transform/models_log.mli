(** Collected notifications from test-aid operators (probe/check). *)

type t

val create : unit -> t
val record : t -> Operators.Models.notification -> unit
val all : t -> Operators.Models.notification list
(** In arrival order. *)

val check_failures : t -> Operators.Models.notification list
val probe_samples : t -> instance:string -> (int * Bitvec.t) list
(** [(time, value)] samples of one probe instance, oldest first. *)

val clear : t -> unit
