(** Source-code generation for controllers and reconfiguration drivers.

    The paper translates the FSM and RTG XML into Java classes executed by
    the simulator, and reports their line counts in Table I ("loJava
    FSM"). Here the target language is OCaml: the generated module is a
    faithful, standalone implementation of the same behavior (the
    simulator executes the equivalent {!Fsm_exec} interpreter, which
    mirrors the generated semantics). *)

val fsm : Fsmkit.Fsm.t -> string
(** OCaml source of a controller module: a [state] sum type, the Moore
    output decode, and the guarded [step] function. *)

val rtg : Rtg.t -> string
(** OCaml source of a configuration sequencer over the RTG. *)

val line_count : string -> int
(** Number of lines of a generated source text. *)
