type t = { mutable items : Operators.Models.notification list (* newest first *) }

let create () = { items = [] }
let record log n = log.items <- n :: log.items
let all log = List.rev log.items

let check_failures log =
  List.filter
    (function
      | Operators.Models.Check_failed _ -> true
      | Operators.Models.Probe_sample _ -> false)
    (all log)

let probe_samples log ~instance =
  List.filter_map
    (function
      | Operators.Models.Probe_sample { instance = i; time; value }
        when i = instance ->
          Some (time, value)
      | Operators.Models.Probe_sample _ | Operators.Models.Check_failed _ ->
          None)
    (all log)

let clear log = log.items <- []
