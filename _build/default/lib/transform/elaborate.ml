module Dp = Netlist.Datapath
module Opspec = Operators.Opspec
module Models = Operators.Models
open Sim

type t = {
  engine : Engine.t;
  clock : Clock.t;
  datapath : Dp.t;
  controls : (string * Engine.signal) list;
  statuses : (string * Engine.signal) list;
  ports : (string * Engine.signal) list;
  notifications : Models_log.t;
}

let datapath ?engine ?clock ~memories dp =
  Dp.validate dp;
  let engine = match engine with Some e -> e | None -> Engine.create () in
  let clock =
    match clock with Some c -> c | None -> Clock.create engine ()
  in
  let notifications = Models_log.create () in
  (* One signal per operator output port, one per control input. *)
  let port_signals : (string, Engine.signal) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (op : Dp.operator) ->
      let spec = Dp.operator_spec op in
      List.iter
        (fun (p : Opspec.port) ->
          if p.Opspec.direction = Opspec.Out then begin
            let name = op.Dp.id ^ "." ^ p.Opspec.port_name in
            Hashtbl.replace port_signals name
              (Engine.signal engine ~name p.Opspec.port_width)
          end)
        spec.Opspec.ports)
    dp.Dp.operators;
  let controls =
    List.map
      (fun (c : Dp.control) ->
        ( c.Dp.ctl_name,
          Engine.signal engine ~name:("ctl." ^ c.Dp.ctl_name) c.Dp.ctl_width ))
      dp.Dp.controls
  in
  let source_signal = function
    | Dp.From_op ep -> Hashtbl.find port_signals (Dp.endpoint_to_string ep)
    | Dp.From_control name -> List.assoc name controls
  in
  (* Input port -> driving signal, via the unique net sinking into it. *)
  let input_signals : (string, Engine.signal) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (n : Dp.net) ->
      let src = source_signal n.Dp.source in
      List.iter
        (fun ep ->
          Hashtbl.replace input_signals (Dp.endpoint_to_string ep) src)
        n.Dp.sinks)
    dp.Dp.nets;
  (* Instantiate the operator models. *)
  List.iter
    (fun (op : Dp.operator) ->
      let find_signal port =
        let key = op.Dp.id ^ "." ^ port in
        match Hashtbl.find_opt port_signals key with
        | Some s -> s
        | None -> (
            match Hashtbl.find_opt input_signals key with
            | Some s -> s
            | None -> failwith ("elaborate: no signal for port " ^ key))
      in
      let env =
        {
          Models.engine;
          clock = Clock.signal clock;
          find_memory = memories;
          find_signal;
          instance = op.Dp.id;
          notify = Models_log.record notifications;
        }
      in
      Models.instantiate env ~kind:op.Dp.kind ~width:op.Dp.width
        ~params:op.Dp.params)
    dp.Dp.operators;
  let statuses =
    List.map
      (fun (st : Dp.status) ->
        ( st.Dp.st_name,
          Hashtbl.find port_signals (Dp.endpoint_to_string st.Dp.st_source) ))
      dp.Dp.statuses
  in
  let ports =
    Hashtbl.fold (fun name s acc -> (name, s) :: acc) port_signals []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  { engine; clock; datapath = dp; controls; statuses; ports; notifications }

let control design name =
  match List.assoc_opt name design.controls with
  | Some s -> s
  | None ->
      failwith
        (Printf.sprintf "design %s: unknown control %S"
           design.datapath.Dp.dp_name name)

let status design name =
  match List.assoc_opt name design.statuses with
  | Some s -> s
  | None ->
      failwith
        (Printf.sprintf "design %s: unknown status %S"
           design.datapath.Dp.dp_name name)

let port_signal design name =
  match List.assoc_opt name design.ports with
  | Some s -> s
  | None ->
      failwith (Printf.sprintf "port_signal: unknown output port %S" name)
