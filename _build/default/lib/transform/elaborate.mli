(** Elaboration of a datapath document into a live simulation.

    The "to hds" translation of the paper: the datapath XML becomes engine
    signals plus operator models from the {!Operators} library. Nets are
    pure connectivity — each operator output port (and each control input)
    owns one signal, and sinks alias the driving signal. *)

type t = {
  engine : Sim.Engine.t;
  clock : Sim.Clock.t;
  datapath : Netlist.Datapath.t;
  controls : (string * Sim.Engine.signal) list;
      (** Control inputs, to be driven by a controller (FSM). *)
  statuses : (string * Sim.Engine.signal) list;
      (** Status outputs, read by the controller. *)
  ports : (string * Sim.Engine.signal) list;
      (** Every operator output port's signal, keyed ["inst.port"]. *)
  notifications : Models_log.t;
      (** Probe samples and check failures raised by test-aid operators. *)
}

val datapath :
  ?engine:Sim.Engine.t ->
  ?clock:Sim.Clock.t ->
  memories:(string -> Operators.Memory.t) ->
  Netlist.Datapath.t ->
  t
(** Validate and elaborate. Creates a fresh engine and a period-10 clock
    unless provided. [memories] resolves SRAM/ROM backing stores by name;
    it may raise [Not_found]-style exceptions for unknown names.

    Raises {!Netlist.Datapath.Invalid} when the datapath does not pass
    {!Netlist.Datapath.check}. *)

val control : t -> string -> Sim.Engine.signal
(** Raises [Failure] on unknown names. *)

val status : t -> string -> Sim.Engine.signal
val port_signal : t -> string -> Sim.Engine.signal
(** Signal of an operator output port, by ["inst.port"] name (probing
    internal connections). *)
