lib/transform/codegen.mli: Fsmkit Rtg
