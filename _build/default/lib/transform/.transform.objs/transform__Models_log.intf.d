lib/transform/models_log.mli: Bitvec Operators
