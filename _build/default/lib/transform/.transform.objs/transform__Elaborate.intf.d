lib/transform/elaborate.mli: Models_log Netlist Operators Sim
