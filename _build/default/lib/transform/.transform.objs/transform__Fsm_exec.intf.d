lib/transform/fsm_exec.mli: Elaborate Fsmkit Sim
