lib/transform/models_log.ml: List Operators
