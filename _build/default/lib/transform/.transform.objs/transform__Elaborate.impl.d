lib/transform/elaborate.ml: Clock Engine Hashtbl List Models_log Netlist Operators Printf Sim
