lib/transform/to_dot.mli: Dotkit Fsmkit Netlist Rtg
