lib/transform/to_dot.ml: Dotkit Fsmkit List Netlist Printf Rtg String
