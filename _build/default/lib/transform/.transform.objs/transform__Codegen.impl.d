lib/transform/codegen.ml: Buffer Fsmkit Hashtbl List Printf Rtg String
