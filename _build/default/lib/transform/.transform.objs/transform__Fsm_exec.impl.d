lib/transform/fsm_exec.ml: Bitvec Clock Elaborate Engine Fsmkit List Printf Sim
