module Fsm = Fsmkit.Fsm
module Guard = Fsmkit.Guard
open Sim

type t = {
  fsm : Fsm.t;
  engine : Engine.t;
  outputs : (string * Engine.signal) list;  (* FSM output -> control signal *)
  inputs : (string * Engine.signal) list;  (* FSM input -> status signal *)
  state_sig : Engine.signal;
  state_index : (string * int) list;
  mutable state : Fsm.state;
  mutable transitions : int;
  mutable cycles : int;
  mutable done_hooks : (unit -> unit) list;  (* reversed *)
}

let drive_state_outputs t =
  List.iter
    (fun (name, signal) ->
      let value = Fsm.output_in_state t.fsm t.state name in
      Engine.drive t.engine signal
        (Bitvec.create ~width:(Engine.width signal) value))
    t.outputs;
  Engine.drive t.engine t.state_sig
    (Bitvec.create
       ~width:(Engine.width t.state_sig)
       (List.assoc t.state.Fsm.sname t.state_index))

let enter t next =
  let was = t.state.Fsm.sname in
  t.state <- next;
  if was <> next.Fsm.sname then begin
    t.transitions <- t.transitions + 1;
    drive_state_outputs t;
    if next.Fsm.is_done then
      List.iter (fun f -> f ()) (List.rev t.done_hooks)
  end

let step t =
  t.cycles <- t.cycles + 1;
  let lookup name =
    match List.assoc_opt name t.inputs with
    | Some s -> Engine.value_int s
    | None ->
        failwith
          (Printf.sprintf "fsm %s: read of unknown status %S"
             t.fsm.Fsm.fsm_name name)
  in
  let rec first_match = function
    | [] -> None
    | (tr : Fsm.transition) :: rest ->
        if Guard.eval tr.Fsm.guard lookup then Some tr.Fsm.target
        else first_match rest
  in
  match first_match t.state.Fsm.transitions with
  | None -> ()
  | Some target -> (
      match Fsm.find_state t.fsm target with
      | Some next -> enter t next
      | None -> assert false (* validated *))

let attach ?enable ~design fsm =
  Fsm.validate fsm;
  let engine = design.Elaborate.engine in
  let outputs =
    List.map
      (fun (o : Fsm.io) ->
        let signal =
          try List.assoc o.Fsm.io_name design.Elaborate.controls
          with Not_found ->
            failwith
              (Printf.sprintf "fsm %s: design has no control %S"
                 fsm.Fsm.fsm_name o.Fsm.io_name)
        in
        if Engine.width signal <> o.Fsm.io_width then
          failwith
            (Printf.sprintf "fsm %s: control %s width %d <> %d"
               fsm.Fsm.fsm_name o.Fsm.io_name (Engine.width signal)
               o.Fsm.io_width);
        (o.Fsm.io_name, signal))
      fsm.Fsm.outputs
  in
  let inputs =
    List.map
      (fun (i : Fsm.io) ->
        let signal =
          try List.assoc i.Fsm.io_name design.Elaborate.statuses
          with Not_found ->
            failwith
              (Printf.sprintf "fsm %s: design has no status %S"
                 fsm.Fsm.fsm_name i.Fsm.io_name)
        in
        if Engine.width signal <> i.Fsm.io_width then
          failwith
            (Printf.sprintf "fsm %s: status %s width %d <> %d"
               fsm.Fsm.fsm_name i.Fsm.io_name (Engine.width signal)
               i.Fsm.io_width);
        (i.Fsm.io_name, signal))
      fsm.Fsm.inputs
  in
  let state_index = List.mapi (fun i s -> (s.Fsm.sname, i)) fsm.Fsm.states in
  let state_width =
    let n = List.length fsm.Fsm.states in
    let rec bits v acc = if v = 0 then max acc 1 else bits (v lsr 1) (acc + 1) in
    bits (max 0 (n - 1)) 0
  in
  let state_sig =
    Engine.signal engine ~name:(fsm.Fsm.fsm_name ^ ".state") state_width
  in
  let initial =
    match Fsm.find_state fsm fsm.Fsm.initial with
    | Some s -> s
    | None -> assert false (* validated *)
  in
  let t =
    {
      fsm;
      engine;
      outputs;
      inputs;
      state_sig;
      state_index;
      state = initial;
      transitions = 0;
      cycles = 0;
      done_hooks = [];
    }
  in
  (* Assert the initial state's outputs during elaboration. *)
  let init_process =
    Engine.process engine ~name:(fsm.Fsm.fsm_name ^ "-init") (fun () ->
        drive_state_outputs t)
  in
  ignore init_process;
  let gated_step =
    match enable with
    | None -> fun () -> step t
    | Some enable ->
        fun () -> if Engine.value_int enable = 1 then step t
  in
  ignore
    (Engine.on_rising_edge engine
       ~clock:(Clock.signal design.Elaborate.clock)
       ~name:(fsm.Fsm.fsm_name ^ "-step")
       gated_step);
  (if initial.Fsm.is_done then
     (* Degenerate but legal: an FSM that starts done. *)
     ());
  t

let current_state t = t.state.Fsm.sname
let in_done_state t = t.state.Fsm.is_done
let transitions_taken t = t.transitions
let cycles_seen t = t.cycles
let on_enter_done t f = t.done_hooks <- f :: t.done_hooks
let state_signal t = t.state_sig
