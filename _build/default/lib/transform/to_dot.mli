(** Graphviz views of the three dialects (the paper's "to dotty" rules). *)

val datapath : Netlist.Datapath.t -> Dotkit.Dot.t
(** Operators as boxes (memories as 3D boxes, test aids dashed), control
    inputs as house-shaped nodes, status outputs as inverted houses; nets
    as edges labeled with their width. *)

val fsm : Fsmkit.Fsm.t -> Dotkit.Dot.t
(** States as circles (done states as double circles, initial marked by an
    entry arrow); transitions labeled with their guards. *)

val rtg : Rtg.t -> Dotkit.Dot.t
(** Configurations as boxes listing their datapath/FSM refs; completion
    edges between them. *)
