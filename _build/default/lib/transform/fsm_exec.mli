(** Behavioral execution of an FSM dialect document inside a simulation.

    The executable counterpart of the generated controller code (the
    paper's "fsm.java"): a synchronous Moore machine driving the control
    signals of an elaborated datapath and branching on its status
    signals. State updates happen on rising clock edges, reading the
    status values settled during the previous cycle. *)

type t

val attach :
  ?enable:Sim.Engine.signal -> design:Elaborate.t -> Fsmkit.Fsm.t -> t
(** Validate the FSM ({!Fsmkit.Fsm.validate}), check it against the design
    (every FSM output must be a design control of equal width, every FSM
    input a design status of equal width — [Failure] otherwise), assert the
    initial state's outputs, and register the clocked process.

    When [enable] (a 1-bit signal) is given, the machine holds its state
    on edges where it reads 0 — the hold/start interface a host processor
    uses in co-simulation. *)

val current_state : t -> string
val in_done_state : t -> bool
val transitions_taken : t -> int
(** State {e changes} (self-loops via no matching guard don't count). *)

val cycles_seen : t -> int
(** Rising edges processed. *)

val on_enter_done : t -> (unit -> unit) -> unit
(** Callback fired each time the machine {e enters} a done state (not on
    every cycle spent there). Multiple callbacks run in registration
    order. *)

val state_signal : t -> Sim.Engine.signal
(** A numeric signal tracking the state index (order of declaration in the
    FSM document); useful for tracing and waveform dumps. *)
