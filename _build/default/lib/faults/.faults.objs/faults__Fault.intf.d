lib/faults/fault.mli: Compiler Fsmkit Operators
