lib/faults/fault.ml: Compiler Fsmkit Hashtbl Int64 Lang List Netlist Operators Printf Rtg
