let duplicates names =
  let sorted = List.sort compare names in
  let rec loop acc = function
    | a :: (b :: _ as rest) -> loop (if a = b then a :: acc else acc) rest
    | [ _ ] | [] -> List.sort_uniq compare acc
  in
  loop [] sorted

let check (prog : Ast.program) =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun s -> errs := s :: !errs) fmt in
  if prog.Ast.prog_width < 2 || prog.Ast.prog_width > Bitvec.max_width then
    err "program width %d outside 2..%d" prog.Ast.prog_width Bitvec.max_width;
  List.iter (fun n -> err "duplicate memory %S" n)
    (duplicates (List.map (fun m -> m.Ast.mem_name) prog.Ast.mems));
  List.iter (fun n -> err "duplicate variable %S" n)
    (duplicates (List.map (fun v -> v.Ast.var_name) prog.Ast.vars));
  let mem_names = List.map (fun m -> m.Ast.mem_name) prog.Ast.mems in
  let var_names = List.map (fun v -> v.Ast.var_name) prog.Ast.vars in
  List.iter
    (fun n -> if List.mem n var_names then err "%S is both a memory and a variable" n)
    mem_names;
  List.iter
    (fun (m : Ast.mem_decl) ->
      if m.Ast.mem_size < 1 then
        err "memory %S has size %d" m.Ast.mem_name m.Ast.mem_size;
      if List.length m.Ast.mem_init > m.Ast.mem_size then
        err "memory %S: initializer has %d values but size is %d"
          m.Ast.mem_name (List.length m.Ast.mem_init) m.Ast.mem_size)
    prog.Ast.mems;
  let rec check_expr = function
    | Ast.Int _ -> ()
    | Ast.Var v -> if not (List.mem v var_names) then err "undeclared variable %S" v
    | Ast.Mem_read (m, addr) ->
        if not (List.mem m mem_names) then err "undeclared memory %S" m;
        check_expr addr
    | Ast.Binop (_, a, b) ->
        check_expr a;
        check_expr b
    | Ast.Unop (_, a) -> check_expr a
  in
  let rec check_cond = function
    | Ast.Cmp (_, a, b) ->
        check_expr a;
        check_expr b
    | Ast.Cand (a, b) | Ast.Cor (a, b) ->
        check_cond a;
        check_cond b
    | Ast.Cnot c -> check_cond c
  in
  let rec check_stmt ~top = function
    | Ast.Assign (v, e) ->
        if not (List.mem v var_names) then err "assignment to undeclared variable %S" v;
        check_expr e
    | Ast.Mem_write (m, addr, value) ->
        if not (List.mem m mem_names) then err "write to undeclared memory %S" m;
        check_expr addr;
        check_expr value
    | Ast.If (c, t, e) ->
        check_cond c;
        if Ast.cond_reads_memory c then err "a condition reads a memory (hoist it into a variable)";
        List.iter (check_stmt ~top:false) t;
        List.iter (check_stmt ~top:false) e
    | Ast.While (c, body) ->
        check_cond c;
        if Ast.cond_reads_memory c then err "a condition reads a memory (hoist it into a variable)";
        List.iter (check_stmt ~top:false) body
    | Ast.Assert c ->
        check_cond c;
        if Ast.cond_reads_memory c then
          err "a condition reads a memory (hoist it into a variable)"
    | Ast.Partition ->
        if not top then err "\"partition\" is only allowed at the top level"
  in
  List.iter
    (fun p ->
      if not (List.mem p var_names) then err "probe of undeclared variable %S" p)
    prog.Ast.probes;
  List.iter (fun n -> err "duplicate probe %S" n) (duplicates prog.Ast.probes);
  List.iter (check_stmt ~top:true) prog.Ast.body;
  List.rev !errs

exception Invalid of string list

let validate prog = match check prog with [] -> () | errs -> raise (Invalid errs)
