(** Reference interpreter — the golden model.

    Runs a program directly over the same {!Operators.Memory.t} stores the
    simulated hardware uses, with identical wrap-around arithmetic at the
    program width, so "run software, run hardware, compare memories" is
    meaningful (the paper's verification scheme). *)

type stats = {
  statements : int;  (** Statement executions. *)
  mem_reads : int;
  mem_writes : int;
  branches : int;  (** Condition evaluations. *)
  asserts_failed : int;  (** Violated [assert] statements. *)
}

exception Runaway of string
(** Raised when execution exceeds the [max_statements] bound. *)

val run :
  ?max_statements:int ->
  memories:(string -> Operators.Memory.t) ->
  Ast.program ->
  (string * Bitvec.t) list * stats
(** Execute the whole program ([partition] markers are no-ops here —
    software runs straight through). Returns the final variable
    environment (declaration order) and counters. [max_statements]
    defaults to 100 million.

    Raises {!Check.Invalid} if the program fails {!Check.check};
    [memories] must supply a store (of the program width) for every
    declared memory. Memory initializers ([mem m[4] = {...};]) are
    applied when the environment is built (see
    [Testinfra.Verify.memory_env]), not here. *)

val run_partition :
  ?max_statements:int ->
  memories:(string -> Operators.Memory.t) ->
  Ast.program ->
  int ->
  (string * Bitvec.t) list * stats
(** [run_partition ~memories prog k] executes only the [k]-th temporal
    partition (0-based), with variables freshly initialized — mirroring
    what one hardware configuration does. *)
