lib/lang/ast.mli:
