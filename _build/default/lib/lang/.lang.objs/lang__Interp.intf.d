lib/lang/interp.mli: Ast Bitvec Operators
