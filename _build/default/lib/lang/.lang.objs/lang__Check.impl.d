lib/lang/check.ml: Ast Bitvec Format List
