lib/lang/parser.ml: Ast Format Fun Lexer List String
