lib/lang/interp.ml: Ast Bitvec Check Hashtbl List Operators Printf
