lib/lang/lexer.mli:
