lib/lang/check.mli: Ast
