module Memory = Operators.Memory

type stats = {
  statements : int;
  mem_reads : int;
  mem_writes : int;
  branches : int;
  asserts_failed : int;
}

exception Runaway of string

type env = {
  width : int;
  vars : (string, Bitvec.t) Hashtbl.t;
  memories : string -> Memory.t;
  max_statements : int;
  mutable n_statements : int;
  mutable n_reads : int;
  mutable n_writes : int;
  mutable n_branches : int;
  mutable n_asserts_failed : int;
}

let binop_fn = function
  | Ast.Add -> Bitvec.add
  | Ast.Sub -> Bitvec.sub
  | Ast.Mul -> Bitvec.mul
  | Ast.Div -> Bitvec.sdiv
  | Ast.Rem -> Bitvec.srem
  | Ast.Band -> Bitvec.logand
  | Ast.Bor -> Bitvec.logor
  | Ast.Bxor -> Bitvec.logxor
  | Ast.Shl -> fun a b -> Bitvec.shift_left a (Bitvec.to_int b)
  | Ast.Shra -> fun a b -> Bitvec.shift_right_arith a (Bitvec.to_int b)
  | Ast.Shrl -> fun a b -> Bitvec.shift_right_logical a (Bitvec.to_int b)

let rec eval_expr env = function
  | Ast.Int v -> Bitvec.create ~width:env.width v
  | Ast.Var v -> Hashtbl.find env.vars v
  | Ast.Mem_read (m, addr) ->
      env.n_reads <- env.n_reads + 1;
      let a = Bitvec.to_int (eval_expr env addr) in
      Memory.read (env.memories m) a
  | Ast.Binop (op, a, b) -> (binop_fn op) (eval_expr env a) (eval_expr env b)
  | Ast.Unop (Ast.Neg, a) -> Bitvec.neg (eval_expr env a)
  | Ast.Unop (Ast.Bnot, a) -> Bitvec.lognot (eval_expr env a)

let cmp_fn = function
  | Ast.Eq -> Bitvec.eq
  | Ast.Ne -> Bitvec.ne
  | Ast.Lt -> Bitvec.slt
  | Ast.Le -> Bitvec.sle
  | Ast.Gt -> Bitvec.sgt
  | Ast.Ge -> Bitvec.sge

let rec eval_cond env = function
  | Ast.Cmp (op, a, b) ->
      Bitvec.to_bool ((cmp_fn op) (eval_expr env a) (eval_expr env b))
  | Ast.Cand (a, b) -> eval_cond env a && eval_cond env b
  | Ast.Cor (a, b) -> eval_cond env a || eval_cond env b
  | Ast.Cnot c -> not (eval_cond env c)

let tick env =
  env.n_statements <- env.n_statements + 1;
  if env.n_statements > env.max_statements then
    raise
      (Runaway
         (Printf.sprintf "interpreter exceeded %d statements" env.max_statements))

let rec exec_stmt env = function
  | Ast.Assign (v, e) ->
      tick env;
      Hashtbl.replace env.vars v (eval_expr env e)
  | Ast.Mem_write (m, addr, value) ->
      tick env;
      let a = Bitvec.to_int (eval_expr env addr) in
      let v = eval_expr env value in
      env.n_writes <- env.n_writes + 1;
      Memory.write (env.memories m) a v
  | Ast.If (c, t, e) ->
      tick env;
      env.n_branches <- env.n_branches + 1;
      exec_block env (if eval_cond env c then t else e)
  | Ast.While (c, body) ->
      tick env;
      env.n_branches <- env.n_branches + 1;
      if eval_cond env c then begin
        exec_block env body;
        exec_stmt env (Ast.While (c, body))
      end
  | Ast.Assert c ->
      tick env;
      if not (eval_cond env c) then
        env.n_asserts_failed <- env.n_asserts_failed + 1
  | Ast.Partition -> ()

and exec_block env stmts = List.iter (exec_stmt env) stmts

let fresh_env ?(max_statements = 100_000_000) ~memories (prog : Ast.program) =
  Check.validate prog;
  let vars = Hashtbl.create 16 in
  List.iter
    (fun (v : Ast.var_decl) ->
      Hashtbl.replace vars v.Ast.var_name
        (Bitvec.create ~width:prog.Ast.prog_width v.Ast.var_init))
    prog.Ast.vars;
  {
    width = prog.Ast.prog_width;
    vars;
    memories;
    max_statements;
    n_statements = 0;
    n_reads = 0;
    n_writes = 0;
    n_branches = 0;
    n_asserts_failed = 0;
  }

let finish env (prog : Ast.program) =
  let bindings =
    List.map
      (fun (v : Ast.var_decl) ->
        (v.Ast.var_name, Hashtbl.find env.vars v.Ast.var_name))
      prog.Ast.vars
  in
  ( bindings,
    {
      statements = env.n_statements;
      mem_reads = env.n_reads;
      mem_writes = env.n_writes;
      branches = env.n_branches;
      asserts_failed = env.n_asserts_failed;
    } )

let run ?max_statements ~memories prog =
  let env = fresh_env ?max_statements ~memories prog in
  exec_block env prog.Ast.body;
  finish env prog

let run_partition ?max_statements ~memories prog k =
  let parts = Ast.partitions prog in
  if k < 0 || k >= List.length parts then
    invalid_arg (Printf.sprintf "run_partition: no partition %d" k);
  let env = fresh_env ?max_statements ~memories prog in
  exec_block env (List.nth parts k);
  finish env prog
