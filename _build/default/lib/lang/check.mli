(** Static checks on source programs.

    Beyond scoping, two restrictions keep the generated hardware simple:
    [partition] markers may appear only at the top level, and loop/branch
    conditions may not read memories (compute the value into a variable
    first). *)

val check : Ast.program -> string list
(** Diagnostics; empty = accepted. *)

exception Invalid of string list

val validate : Ast.program -> unit
