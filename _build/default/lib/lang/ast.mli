(** Abstract syntax of the source language.

    A small imperative language standing in for the Java subset the
    Galadriel & Nenya compiler accepts: scalar variables, word-addressed
    memories (the SRAMs of the target platform), arithmetic over a single
    program-wide data width (two's complement, wrapping), structured
    control flow, and [partition] markers that delimit temporal
    partitions.

    Concrete syntax example:
    {v
program hamming width 16;
mem input[128];
mem output[128];
var i;
var code;
for (i = 0; i < 128; i = i + 1) {
  code = input[i];
  output[i] = code & 15;
}
    v} *)

type binop =
  | Add | Sub | Mul | Div | Rem
  | Band | Bor | Bxor
  | Shl  (** [<<] *)
  | Shra  (** [>>] arithmetic *)
  | Shrl  (** [>>>] logical *)

type unop = Neg | Bnot

type cmpop = Eq | Ne | Lt | Le | Gt | Ge  (** Signed comparisons. *)

type expr =
  | Int of int
  | Var of string
  | Mem_read of string * expr  (** [m[e]] *)
  | Binop of binop * expr * expr
  | Unop of unop * expr

type cond =
  | Cmp of cmpop * expr * expr
  | Cand of cond * cond
  | Cor of cond * cond
  | Cnot of cond

type stmt =
  | Assign of string * expr
  | Mem_write of string * expr * expr  (** [m[addr] = value] *)
  | If of cond * stmt list * stmt list
  | While of cond * stmt list
  | Assert of cond
      (** Runtime assertion: the golden model counts violations; the
          hardware maps it to a [check] operator (one of the testing
          requirements the paper lists). *)
  | Partition  (** Temporal-partition boundary; top level only. *)

type mem_decl = {
  mem_name : string;
  mem_size : int;
  mem_init : int list;
      (** Initial contents from a [= { ... }] initializer (shorter than
          [mem_size] fills the rest with zeros); both the golden model and
          the hardware SRAM start from them. *)
}
type var_decl = { var_name : string; var_init : int }

type program = {
  prog_name : string;
  prog_width : int;  (** Data width of every variable, memory and FU. *)
  mems : mem_decl list;
  vars : var_decl list;
  probes : string list;
      (** [probe x;] declarations: the generated datapath attaches a probe
          operator to the variable's register, recording every value it
          takes during simulation ("access to values on certain
          connections"). *)
  body : stmt list;
}

val binop_to_string : binop -> string
val unop_to_string : unop -> string
val cmpop_to_string : cmpop -> string

val partitions : program -> stmt list list
(** Top-level statement runs separated by [Partition] markers (one
    element when no markers are present). *)

val expr_reads_memory : expr -> bool
val cond_reads_memory : cond -> bool

val vars_written : stmt list -> string list
(** Sorted, without duplicates. *)

val vars_read : stmt list -> string list
(** Variables whose value is read anywhere (including addresses and
    conditions). Sorted, without duplicates. *)
