type binop =
  | Add | Sub | Mul | Div | Rem
  | Band | Bor | Bxor
  | Shl | Shra | Shrl

type unop = Neg | Bnot

type cmpop = Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | Int of int
  | Var of string
  | Mem_read of string * expr
  | Binop of binop * expr * expr
  | Unop of unop * expr

type cond =
  | Cmp of cmpop * expr * expr
  | Cand of cond * cond
  | Cor of cond * cond
  | Cnot of cond

type stmt =
  | Assign of string * expr
  | Mem_write of string * expr * expr
  | If of cond * stmt list * stmt list
  | While of cond * stmt list
  | Assert of cond
  | Partition

type mem_decl = { mem_name : string; mem_size : int; mem_init : int list }
type var_decl = { var_name : string; var_init : int }

type program = {
  prog_name : string;
  prog_width : int;
  mems : mem_decl list;
  vars : var_decl list;
  probes : string list;
  body : stmt list;
}

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Rem -> "%"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Shl -> "<<"
  | Shra -> ">>"
  | Shrl -> ">>>"

let unop_to_string = function Neg -> "-" | Bnot -> "~"

let cmpop_to_string = function
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let partitions prog =
  let rec split current acc = function
    | [] -> List.rev (List.rev current :: acc)
    | Partition :: rest -> split [] (List.rev current :: acc) rest
    | stmt :: rest -> split (stmt :: current) acc rest
  in
  split [] [] prog.body

let rec expr_reads_memory = function
  | Int _ | Var _ -> false
  | Mem_read _ -> true
  | Binop (_, a, b) -> expr_reads_memory a || expr_reads_memory b
  | Unop (_, a) -> expr_reads_memory a

let rec cond_reads_memory = function
  | Cmp (_, a, b) -> expr_reads_memory a || expr_reads_memory b
  | Cand (a, b) | Cor (a, b) -> cond_reads_memory a || cond_reads_memory b
  | Cnot c -> cond_reads_memory c

let vars_written stmts =
  let rec collect acc = function
    | Assign (v, _) -> v :: acc
    | Mem_write _ | Assert _ | Partition -> acc
    | If (_, t, e) -> List.fold_left collect (List.fold_left collect acc t) e
    | While (_, body) -> List.fold_left collect acc body
  in
  List.sort_uniq compare (List.fold_left collect [] stmts)

let vars_read stmts =
  let rec expr acc = function
    | Int _ -> acc
    | Var v -> v :: acc
    | Mem_read (_, a) -> expr acc a
    | Binop (_, a, b) -> expr (expr acc a) b
    | Unop (_, a) -> expr acc a
  in
  let rec cond acc = function
    | Cmp (_, a, b) -> expr (expr acc a) b
    | Cand (a, b) | Cor (a, b) -> cond (cond acc a) b
    | Cnot c -> cond acc c
  in
  let rec stmt acc = function
    | Assign (_, e) -> expr acc e
    | Mem_write (_, a, v) -> expr (expr acc a) v
    | If (c, t, e) ->
        List.fold_left stmt (List.fold_left stmt (cond acc c) t) e
    | While (c, body) -> List.fold_left stmt (cond acc c) body
    | Assert c -> cond acc c
    | Partition -> acc
  in
  List.sort_uniq compare (List.fold_left stmt [] stmts)
