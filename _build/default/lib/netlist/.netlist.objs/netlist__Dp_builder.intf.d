lib/netlist/dp_builder.mli: Datapath Operators
