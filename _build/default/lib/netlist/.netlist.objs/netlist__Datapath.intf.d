lib/netlist/datapath.mli: Operators Xmlkit
