lib/netlist/datapath.ml: Format Hashtbl List Operators Option Printf String Xmlkit
