lib/netlist/dp_builder.ml: Datapath Hashtbl List Operators Option Printf
