(* Tests for guards and the FSM dialect. *)

module Guard = Fsmkit.Guard
module Fsm = Fsmkit.Fsm

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* --- guards ---------------------------------------------------------- *)

let test_guard_parse_basic () =
  check_bool "bare ident" true
    (Guard.parse "ready" = Guard.Test { signal = "ready"; op = Guard.Cne; value = 0 });
  check_bool "eq" true
    (Guard.parse "x==3" = Guard.Test { signal = "x"; op = Guard.Ceq; value = 3 });
  check_bool "le" true
    (Guard.parse "x <= 7" = Guard.Test { signal = "x"; op = Guard.Cle; value = 7 });
  check_bool "empty is true" true (Guard.parse "" = Guard.True);
  check_bool "literal one" true (Guard.parse "1" = Guard.True)

let test_guard_precedence () =
  (* ! binds tighter than &&, && tighter than ||. *)
  let g = Guard.parse "!a && b || c" in
  match g with
  | Guard.Or (Guard.And (Guard.Not _, _), _) -> ()
  | _ -> Alcotest.fail "unexpected parse structure"

let test_guard_parens () =
  let g = Guard.parse "a && (b || c)" in
  match g with
  | Guard.And (_, Guard.Or (_, _)) -> ()
  | _ -> Alcotest.fail "parens not honoured"

let test_guard_errors () =
  let fails s = try ignore (Guard.parse s); false with Failure _ -> true in
  check_bool "dangling op" true (fails "a &&");
  check_bool "missing paren" true (fails "(a");
  check_bool "cmp without value" true (fails "a ==");
  check_bool "garbage char" true (fails "a @ b")

let test_guard_eval () =
  let lookup = function "a" -> 1 | "b" -> 0 | "x" -> 5 | _ -> 0 in
  let t s = Guard.eval (Guard.parse s) lookup in
  check_bool "bare true" true (t "a");
  check_bool "bare false" false (t "b");
  check_bool "not" true (t "!b");
  check_bool "and" false (t "a && b");
  check_bool "or" true (t "a || b");
  check_bool "lt" true (t "x<6");
  check_bool "ge" true (t "x>=5");
  check_bool "ne" true (t "x!=4");
  check_bool "complex" true (t "(a || b) && x==5")

let test_guard_signals () =
  Alcotest.(check (list string))
    "collected sorted unique" [ "a"; "b"; "x" ]
    (Guard.signals (Guard.parse "a && (b || a) && x==2"))

let prop_guard_roundtrip =
  let gen =
    QCheck2.Gen.(
      sized @@ fix (fun self n ->
          if n = 0 then
            map2
              (fun s (op, v) -> Guard.Test { signal = s; op; value = v })
              (oneofl [ "a"; "b"; "st0"; "flag" ])
              (pair
                 (oneofl Guard.[ Ceq; Cne; Clt; Cle; Cgt; Cge ])
                 (int_range 0 20))
          else
            oneof
              [
                map (fun g -> Guard.Not g) (self (n / 2));
                map2 (fun a b -> Guard.And (a, b)) (self (n / 2)) (self (n / 2));
                map2 (fun a b -> Guard.Or (a, b)) (self (n / 2)) (self (n / 2));
              ]))
  in
  QCheck2.Test.make ~name:"guard print/parse round-trip" ~count:300 gen
    (fun g -> Guard.equal g (Guard.parse (Guard.to_string g)))

let prop_guard_eval_stable =
  QCheck2.Test.make ~name:"eval unchanged by print/parse" ~count:200
    QCheck2.Gen.(pair (int_range 0 10) (int_range 0 10))
    (fun (a, b) ->
      let g = Guard.parse "a==3 && b<5 || !(a>7)" in
      let lookup = function "a" -> a | "b" -> b | _ -> 0 in
      Guard.eval g lookup = Guard.eval (Guard.parse (Guard.to_string g)) lookup)

(* --- FSM ------------------------------------------------------------- *)

let sample_fsm () =
  {
    Fsm.fsm_name = "ctl";
    inputs = [ { Fsm.io_name = "lt"; io_width = 1; default = 0 } ];
    outputs =
      [
        { Fsm.io_name = "en"; io_width = 1; default = 0 };
        { Fsm.io_name = "sel"; io_width = 2; default = 0 };
      ];
    initial = "s0";
    states =
      [
        {
          Fsm.sname = "s0";
          is_done = false;
          settings = [ ("en", 1); ("sel", 2) ];
          transitions =
            [
              { Fsm.guard = Guard.parse "lt==1"; target = "s0" };
              { Fsm.guard = Guard.True; target = "halt" };
            ];
        };
        { Fsm.sname = "halt"; is_done = true; settings = []; transitions = [] };
      ];
  }

let test_fsm_valid () =
  Alcotest.(check (list string)) "no diagnostics" [] (Fsm.check (sample_fsm ()))

let test_fsm_accessors () =
  let fsm = sample_fsm () in
  check_int "states" 2 (Fsm.state_count fsm);
  Alcotest.(check (list string)) "done states" [ "halt" ] (Fsm.done_states fsm);
  let s0 = Option.get (Fsm.find_state fsm "s0") in
  check_int "explicit setting" 1 (Fsm.output_in_state fsm s0 "en");
  let halt = Option.get (Fsm.find_state fsm "halt") in
  check_int "default setting" 0 (Fsm.output_in_state fsm halt "en")

let test_fsm_xml_roundtrip () =
  let fsm = sample_fsm () in
  let fsm' =
    Fsm.of_xml (Xmlkit.Xml_parser.parse_string (Xmlkit.Xml.to_string (Fsm.to_xml fsm)))
  in
  check_bool "round trip" true (fsm = fsm')

let has_error fsm fragment =
  List.exists
    (fun e ->
      let n = String.length fragment and h = String.length e in
      let rec go i = i + n <= h && (String.sub e i n = fragment || go (i + 1)) in
      n = 0 || go 0)
    (Fsm.check fsm)

let test_fsm_bad_initial () =
  let fsm = { (sample_fsm ()) with Fsm.initial = "nope" } in
  check_bool "bad initial" true (has_error fsm "initial state")

let test_fsm_bad_target () =
  let fsm = sample_fsm () in
  let s0 = Option.get (Fsm.find_state fsm "s0") in
  let s0 =
    { s0 with Fsm.transitions = [ { Fsm.guard = Guard.True; target = "zz" } ] }
  in
  let fsm =
    { fsm with Fsm.states = [ s0; List.nth fsm.Fsm.states 1 ] }
  in
  check_bool "unknown target" true (has_error fsm "unknown state")

let test_fsm_undeclared_output () =
  let fsm = sample_fsm () in
  let s0 = Option.get (Fsm.find_state fsm "s0") in
  let s0 = { s0 with Fsm.settings = [ ("ghost", 1) ] } in
  let fsm = { fsm with Fsm.states = [ s0; List.nth fsm.Fsm.states 1 ] } in
  check_bool "undeclared output" true (has_error fsm "undeclared output")

let test_fsm_value_too_wide () =
  let fsm = sample_fsm () in
  let s0 = Option.get (Fsm.find_state fsm "s0") in
  let s0 = { s0 with Fsm.settings = [ ("sel", 9) ] } in
  let fsm = { fsm with Fsm.states = [ s0; List.nth fsm.Fsm.states 1 ] } in
  check_bool "value too wide" true (has_error fsm "does not fit")

let test_fsm_guard_undeclared_input () =
  let fsm = sample_fsm () in
  let s0 = Option.get (Fsm.find_state fsm "s0") in
  let s0 =
    {
      s0 with
      Fsm.transitions = [ { Fsm.guard = Guard.parse "mystery"; target = "halt" } ];
    }
  in
  let fsm = { fsm with Fsm.states = [ s0; List.nth fsm.Fsm.states 1 ] } in
  check_bool "undeclared guard input" true (has_error fsm "undeclared input")

let test_fsm_done_unreachable () =
  let fsm = sample_fsm () in
  let s0 = Option.get (Fsm.find_state fsm "s0") in
  let s0 =
    { s0 with Fsm.transitions = [ { Fsm.guard = Guard.True; target = "s0" } ] }
  in
  let fsm = { fsm with Fsm.states = [ s0; List.nth fsm.Fsm.states 1 ] } in
  check_bool "done unreachable" true (has_error fsm "reachable")

let test_fsm_xml_guard_attribute () =
  (* The [on] attribute is omitted for unconditional transitions. *)
  let xml = Xmlkit.Xml.to_string (Fsm.to_xml (sample_fsm ())) in
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "guarded has on" true (contains "on=\"lt==1\"" xml);
  check_bool "unconditional has no on" true (contains "<next to=\"halt\"/>" xml)

let test_fsm_load_save () =
  let fsm = sample_fsm () in
  let path = Filename.temp_file "fsm" ".xml" in
  Fsm.save path fsm;
  let fsm' = Fsm.load path in
  Sys.remove path;
  check_bool "file round trip" true (fsm = fsm');
  check_str "name preserved" "ctl" fsm'.Fsm.fsm_name

let suite =
  let qc = QCheck_alcotest.to_alcotest in
  [
    ("guard parse basics", `Quick, test_guard_parse_basic);
    ("guard precedence", `Quick, test_guard_precedence);
    ("guard parens", `Quick, test_guard_parens);
    ("guard errors", `Quick, test_guard_errors);
    ("guard eval", `Quick, test_guard_eval);
    ("guard signals", `Quick, test_guard_signals);
    qc prop_guard_roundtrip;
    qc prop_guard_eval_stable;
    ("fsm valid", `Quick, test_fsm_valid);
    ("fsm accessors", `Quick, test_fsm_accessors);
    ("fsm xml round trip", `Quick, test_fsm_xml_roundtrip);
    ("fsm bad initial", `Quick, test_fsm_bad_initial);
    ("fsm bad target", `Quick, test_fsm_bad_target);
    ("fsm undeclared output", `Quick, test_fsm_undeclared_output);
    ("fsm value too wide", `Quick, test_fsm_value_too_wide);
    ("fsm guard undeclared input", `Quick, test_fsm_guard_undeclared_input);
    ("fsm done unreachable", `Quick, test_fsm_done_unreachable);
    ("fsm guard attribute shape", `Quick, test_fsm_xml_guard_attribute);
    ("fsm load/save", `Quick, test_fsm_load_save);
  ]
