(* Tests for the operator library: memory storage, port specs, models. *)

open Sim
module Memory = Operators.Memory
module Opspec = Operators.Opspec
module Models = Operators.Models

let bv ~width v = Bitvec.create ~width v
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- memory ---------------------------------------------------------- *)

let test_memory_basics () =
  let m = Memory.create ~name:"m" ~width:8 16 in
  check_int "size" 16 (Memory.size m);
  check_int "width" 8 (Memory.width m);
  Memory.write m 3 (bv ~width:8 200);
  check_int "read back" 200 (Bitvec.to_int (Memory.read m 3));
  check_int "other cells zero" 0 (Bitvec.to_int (Memory.read m 4))

let test_memory_out_of_range () =
  let m = Memory.create ~width:8 4 in
  check_int "oob read is 0" 0 (Bitvec.to_int (Memory.read m 9));
  Memory.write m 100 (bv ~width:8 1);
  check_int "two accesses counted" 2 (Memory.out_of_range_accesses m)

let test_memory_load_diff () =
  let a = Memory.of_list ~width:8 [ 1; 2; 3; 4 ] in
  let b = Memory.copy a in
  check_bool "copies equal" true (Memory.equal a b);
  Memory.write b 2 (bv ~width:8 9);
  (match Memory.diff a b with
  | [ (2, 3, 9) ] -> ()
  | _ -> Alcotest.fail "expected exactly one diff at address 2");
  Memory.load a ~offset:1 [ 7; 8 ];
  check_int "offset load" 7 (Bitvec.to_int (Memory.read a 1));
  check_int "offset load 2" 8 (Bitvec.to_int (Memory.read a 2))

let test_memory_clear () =
  let m = Memory.of_list ~width:8 [ 5; 6 ] in
  Memory.clear m;
  check_bool "cleared" true (List.for_all (( = ) 0) (Memory.to_list m))

let test_memory_width_mismatch () =
  let m = Memory.create ~width:8 4 in
  let raised =
    try Memory.write m 0 (bv ~width:16 1); false
    with Invalid_argument _ -> true
  in
  check_bool "width mismatch rejected" true raised

(* --- specs ----------------------------------------------------------- *)

let test_spec_binary () =
  let spec = Opspec.lookup ~kind:"add" ~width:16 ~params:[] in
  check_bool "not sequential" false spec.Opspec.sequential;
  check_int "three ports" 3 (List.length spec.Opspec.ports);
  let y = List.find (fun p -> p.Opspec.port_name = "y") spec.Opspec.ports in
  check_int "y width" 16 y.Opspec.port_width

let test_spec_comparison_output_is_bit () =
  let spec = Opspec.lookup ~kind:"lts" ~width:16 ~params:[] in
  let y = List.find (fun p -> p.Opspec.port_name = "y") spec.Opspec.ports in
  check_int "y width 1" 1 y.Opspec.port_width

let test_spec_mux () =
  let spec = Opspec.lookup ~kind:"mux" ~width:8 ~params:[ ("inputs", "5") ] in
  check_int "5 inputs + sel + y" 7 (List.length spec.Opspec.ports);
  let sel = List.find (fun p -> p.Opspec.port_name = "sel") spec.Opspec.ports in
  check_int "sel width for 5 inputs" 3 sel.Opspec.port_width

let test_sel_width () =
  check_int "2 inputs" 1 (Opspec.sel_width 2);
  check_int "3 inputs" 2 (Opspec.sel_width 3);
  check_int "4 inputs" 2 (Opspec.sel_width 4);
  check_int "5 inputs" 3 (Opspec.sel_width 5);
  check_int "degenerate" 1 (Opspec.sel_width 1)

let test_spec_errors () =
  let fails f = try ignore (f ()); false with Opspec.Spec_error _ -> true in
  check_bool "unknown kind" true
    (fails (fun () -> Opspec.lookup ~kind:"frobnicate" ~width:8 ~params:[]));
  check_bool "const needs value" true
    (fails (fun () -> Opspec.lookup ~kind:"const" ~width:8 ~params:[]));
  check_bool "sram needs memory" true
    (fails (fun () -> Opspec.lookup ~kind:"sram" ~width:8 ~params:[ ("addr-width", "4") ]));
  check_bool "bad width" true
    (fails (fun () -> Opspec.lookup ~kind:"add" ~width:0 ~params:[]));
  check_bool "mux needs >= 2" true
    (fails (fun () -> Opspec.lookup ~kind:"mux" ~width:8 ~params:[ ("inputs", "1") ]))

let test_all_kinds_resolvable () =
  List.iter
    (fun kind ->
      let params =
        match kind with
        | "const" | "check" -> [ ("value", "3") ]
        | "zext" | "sext" -> [ ("from", "4") ]
        | "sram" | "rom" -> [ ("memory", "m"); ("addr-width", "4") ]
        | _ -> []
      in
      ignore (Opspec.lookup ~kind ~width:8 ~params))
    Opspec.all_kinds;
  check_bool "is_known" true (Opspec.is_known "add");
  check_bool "not known" false (Opspec.is_known "nope")

(* --- models ---------------------------------------------------------- *)

(* Harness: instantiate one operator with fresh signals per port. *)
let harness ?(width = 8) ?(params = []) kind =
  let engine = Engine.create () in
  let clock = Clock.create engine ~period:10 () in
  let mem = Memory.create ~name:"m" ~width 16 in
  let spec = Opspec.lookup ~kind ~width ~params in
  let signals =
    List.map
      (fun (p : Opspec.port) ->
        (p.Opspec.port_name, Engine.signal engine ~name:p.Opspec.port_name p.Opspec.port_width))
      spec.Opspec.ports
  in
  let notes = ref [] in
  let env =
    {
      Models.engine;
      clock = Clock.signal clock;
      find_memory = (fun _ -> mem);
      find_signal = (fun n -> List.assoc n signals);
      instance = "dut";
      notify = (fun n -> notes := n :: !notes);
    }
  in
  Models.instantiate env ~kind ~width ~params;
  (engine, signals, mem, notes)

let port signals name = List.assoc name signals

let test_model_add () =
  let engine, s, _, _ = harness "add" in
  Engine.drive engine (port s "a") (bv ~width:8 30);
  Engine.drive engine (port s "b") (bv ~width:8 12);
  ignore (Engine.run ~max_time:100 engine);
  check_int "sum" 42 (Engine.value_int (port s "y"))

let test_model_comparison () =
  let engine, s, _, _ = harness "lts" in
  Engine.drive engine (port s "a") (bv ~width:8 0xFF) (* -1 *);
  Engine.drive engine (port s "b") (bv ~width:8 1);
  ignore (Engine.run ~max_time:100 engine);
  check_int "-1 < 1 signed" 1 (Engine.value_int (port s "y"))

let test_model_mux () =
  let engine, s, _, _ = harness "mux" ~params:[ ("inputs", "3") ] in
  Engine.drive engine (port s "in0") (bv ~width:8 10);
  Engine.drive engine (port s "in1") (bv ~width:8 20);
  Engine.drive engine (port s "in2") (bv ~width:8 30);
  Engine.drive engine (port s "sel") (bv ~width:2 1);
  ignore (Engine.run ~max_time:50 engine);
  check_int "selects in1" 20 (Engine.value_int (port s "y"));
  Engine.drive engine (port s "sel") (bv ~width:2 3);
  ignore (Engine.run ~max_time:100 engine);
  check_int "out-of-range sel clamps to last" 30 (Engine.value_int (port s "y"))

let test_model_reg () =
  let engine, s, _, _ = harness "reg" ~params:[ ("init", "5") ] in
  check_int "init value" 5 (Engine.value_int (port s "q"));
  Engine.drive engine (port s "d") (bv ~width:8 77);
  ignore (Engine.run ~max_time:22 engine);
  check_int "disabled: keeps value" 5 (Engine.value_int (port s "q"));
  Engine.drive engine (port s "en") (bv ~width:1 1);
  ignore (Engine.run ~max_time:42 engine);
  check_int "enabled: captures" 77 (Engine.value_int (port s "q"))

let test_model_counter () =
  let engine, s, _, _ = harness "counter" ~params:[ ("step", "2") ] in
  Engine.drive engine (port s "en") (bv ~width:1 1);
  ignore (Engine.run ~max_time:52 engine) (* edges at 5,15,25,35,45 *);
  check_int "counted 5 edges by 2" 10 (Engine.value_int (port s "q"));
  Engine.drive engine (port s "load") (bv ~width:1 1);
  Engine.drive engine (port s "d") (bv ~width:8 100);
  ignore (Engine.run ~max_time:62 engine);
  check_int "load wins over en" 100 (Engine.value_int (port s "q"))

let test_model_sram () =
  let engine, s, mem, _ = harness "sram" ~params:[ ("memory", "m"); ("addr-width", "4") ] in
  Memory.write mem 3 (bv ~width:8 99);
  Engine.drive engine (port s "addr") (bv ~width:4 3);
  ignore (Engine.run ~max_time:4 engine);
  check_int "async read" 99 (Engine.value_int (port s "dout"));
  (* Write 55 to address 7 on the next edge. *)
  Engine.drive engine (port s "addr") (bv ~width:4 7);
  Engine.drive engine (port s "din") (bv ~width:8 55);
  Engine.drive engine (port s "we") (bv ~width:1 1);
  ignore (Engine.run ~max_time:12 engine);
  check_int "stored" 55 (Bitvec.to_int (Memory.read mem 7));
  check_int "dout refreshed after write" 55 (Engine.value_int (port s "dout"))

let test_model_rom () =
  let engine, s, mem, _ = harness "rom" ~params:[ ("memory", "m"); ("addr-width", "4") ] in
  Memory.write mem 2 (bv ~width:8 123);
  Engine.drive engine (port s "addr") (bv ~width:4 2);
  ignore (Engine.run ~max_time:10 engine);
  check_int "rom read" 123 (Engine.value_int (port s "dout"))

let test_model_probe () =
  let engine, s, _, notes = harness "probe" in
  Engine.drive engine (port s "a") ~delay:3 (bv ~width:8 1);
  Engine.drive engine (port s "a") ~delay:6 (bv ~width:8 2);
  ignore (Engine.run ~max_time:20 engine);
  let samples =
    List.filter
      (function Models.Probe_sample _ -> true | Models.Check_failed _ -> false)
      !notes
  in
  check_int "two samples" 2 (List.length samples)

let test_model_check () =
  let engine, s, _, notes = harness "check" ~params:[ ("value", "7") ] in
  Engine.drive engine (port s "a") (bv ~width:8 7);
  Engine.drive engine (port s "en") (bv ~width:1 1);
  ignore (Engine.run ~max_time:10 engine);
  check_int "no failure on match" 0 (List.length !notes);
  Engine.drive engine (port s "a") (bv ~width:8 8);
  ignore (Engine.run ~max_time:20 engine);
  check_int "failure recorded" 1 (List.length !notes)

let test_model_check_stop_action () =
  let engine, s, _, _ =
    harness "check" ~params:[ ("value", "7"); ("action", "stop") ]
  in
  Engine.drive engine (port s "a") (bv ~width:8 9);
  Engine.drive engine (port s "en") (bv ~width:1 1);
  match Engine.run ~max_time:20 engine with
  | Engine.Stop_requested _ -> ()
  | _ -> Alcotest.fail "expected a stop"

let test_model_stop () =
  let engine, s, _, _ = harness "stop" ~params:[ ("reason", "end of test") ] in
  Engine.drive engine (port s "en") ~delay:8 (bv ~width:1 1);
  match Engine.run ~max_time:50 engine with
  | Engine.Stop_requested r -> Alcotest.(check string) "reason" "end of test" r
  | _ -> Alcotest.fail "expected a stop"

let test_model_minmax_abs () =
  let run kind a_v b_v =
    let engine, s, _, _ = harness kind in
    Engine.drive engine (port s "a") (bv ~width:8 a_v);
    (match List.assoc_opt "b" s with
    | Some b -> Engine.drive engine b (bv ~width:8 b_v)
    | None -> ());
    ignore (Engine.run ~max_time:50 engine);
    Engine.value_int (port s "y")
  in
  check_int "minu" 3 (run "minu" 3 200);
  check_int "maxu" 200 (run "maxu" 3 200);
  (* 0xFF = -1 signed: mins picks it, minu does not. *)
  check_int "mins picks negative" 0xFF (run "mins" 0xFF 1);
  check_int "maxs picks positive" 1 (run "maxs" 0xFF 1);
  check_int "abs of -7" 7 (run "abs" 0xF9 0);
  check_int "abs of 7" 7 (run "abs" 7 0)

let test_model_zext_sext () =
  let engine, s, _, _ = harness "sext" ~width:8 ~params:[ ("from", "4") ] in
  Engine.drive engine (port s "a") (bv ~width:4 0b1010);
  ignore (Engine.run ~max_time:10 engine);
  check_int "sign extended" 0xFA (Engine.value_int (port s "y"))

(* Property: every ALU model computes the same function as Bitvec. *)
let prop_alu_models_match_bitvec =
  QCheck2.Test.make ~name:"ALU models match Bitvec" ~count:100
    QCheck2.Gen.(
      triple
        (oneofl [ "add"; "sub"; "mul"; "and"; "or"; "xor"; "divu"; "remu" ])
        (int_range 0 255) (int_range 0 255))
    (fun (kind, a, b) ->
      let engine, s, _, _ = harness kind in
      Engine.drive engine (port s "a") (bv ~width:8 a);
      Engine.drive engine (port s "b") (bv ~width:8 b);
      ignore (Engine.run ~max_time:50 engine);
      let expected =
        let f =
          match kind with
          | "add" -> Bitvec.add
          | "sub" -> Bitvec.sub
          | "mul" -> Bitvec.mul
          | "and" -> Bitvec.logand
          | "or" -> Bitvec.logor
          | "xor" -> Bitvec.logxor
          | "divu" -> Bitvec.udiv
          | "remu" -> Bitvec.urem
          | _ -> assert false
        in
        f (bv ~width:8 a) (bv ~width:8 b)
      in
      Engine.value_int (port s "y") = Bitvec.to_int expected)

let suite =
  [
    ("memory basics", `Quick, test_memory_basics);
    ("memory out of range", `Quick, test_memory_out_of_range);
    ("memory load/diff", `Quick, test_memory_load_diff);
    ("memory clear", `Quick, test_memory_clear);
    ("memory width mismatch", `Quick, test_memory_width_mismatch);
    ("spec binary", `Quick, test_spec_binary);
    ("spec comparison bit output", `Quick, test_spec_comparison_output_is_bit);
    ("spec mux", `Quick, test_spec_mux);
    ("sel width", `Quick, test_sel_width);
    ("spec errors", `Quick, test_spec_errors);
    ("all kinds resolvable", `Quick, test_all_kinds_resolvable);
    ("model add", `Quick, test_model_add);
    ("model signed compare", `Quick, test_model_comparison);
    ("model mux", `Quick, test_model_mux);
    ("model reg", `Quick, test_model_reg);
    ("model counter", `Quick, test_model_counter);
    ("model sram", `Quick, test_model_sram);
    ("model rom", `Quick, test_model_rom);
    ("model probe", `Quick, test_model_probe);
    ("model check", `Quick, test_model_check);
    ("model check stop action", `Quick, test_model_check_stop_action);
    ("model stop", `Quick, test_model_stop);
    ("model min/max/abs", `Quick, test_model_minmax_abs);
    ("model sext", `Quick, test_model_zext_sext);
    QCheck_alcotest.to_alcotest prop_alu_models_match_bitvec;
  ]
