(* Tests for the Reconfiguration Transition Graph dialect. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let two_config () =
  {
    Rtg.rtg_name = "fdct2";
    initial = "p1";
    configurations =
      [
        { Rtg.cfg_name = "p1"; datapath_ref = "p1_dp"; fsm_ref = "p1_fsm" };
        { Rtg.cfg_name = "p2"; datapath_ref = "p2_dp"; fsm_ref = "p2_fsm" };
      ];
    transitions = [ { Rtg.src = "p1"; dst = "p2" } ];
  }

let test_singleton () =
  let rtg = Rtg.singleton ~name:"solo" ~datapath_ref:"dp" ~fsm_ref:"fsm" in
  Alcotest.(check (list string)) "valid" [] (Rtg.check rtg);
  Alcotest.(check (list string)) "order" [ "solo" ] (Rtg.execution_order rtg);
  check_int "one configuration" 1 (Rtg.configuration_count rtg)

let test_two_config_order () =
  let rtg = two_config () in
  Alcotest.(check (list string)) "valid" [] (Rtg.check rtg);
  Alcotest.(check (list string)) "order" [ "p1"; "p2" ] (Rtg.execution_order rtg);
  check_bool "successor" true (Rtg.successor rtg "p1" = Some "p2");
  check_bool "final has none" true (Rtg.successor rtg "p2" = None)

let has_error rtg fragment =
  List.exists
    (fun e ->
      let n = String.length fragment and h = String.length e in
      let rec go i = i + n <= h && (String.sub e i n = fragment || go (i + 1)) in
      n = 0 || go 0)
    (Rtg.check rtg)

let test_bad_initial () =
  let rtg = { (two_config ()) with Rtg.initial = "zz" } in
  check_bool "bad initial" true (has_error rtg "initial configuration")

let test_unknown_endpoint () =
  let rtg =
    {
      (two_config ()) with
      Rtg.transitions = [ { Rtg.src = "p1"; dst = "ghost" } ];
    }
  in
  check_bool "unknown destination" true (has_error rtg "unknown configuration")

let test_multiple_outgoing () =
  let rtg =
    {
      (two_config ()) with
      Rtg.transitions =
        [ { Rtg.src = "p1"; dst = "p2" }; { Rtg.src = "p1"; dst = "p1" } ];
    }
  in
  check_bool "several outgoing" true (has_error rtg "several outgoing")

let test_cycle_detected () =
  let rtg =
    {
      (two_config ()) with
      Rtg.transitions =
        [ { Rtg.src = "p1"; dst = "p2" }; { Rtg.src = "p2"; dst = "p1" } ];
    }
  in
  check_bool "cycle" true (has_error rtg "cycle")

let test_unreachable () =
  let rtg = { (two_config ()) with Rtg.transitions = [] } in
  check_bool "unreachable p2" true (has_error rtg "unreachable")

let test_xml_roundtrip () =
  let rtg = two_config () in
  let rtg' =
    Rtg.of_xml
      (Xmlkit.Xml_parser.parse_string (Xmlkit.Xml.to_string (Rtg.to_xml rtg)))
  in
  check_bool "round trip" true (rtg = rtg')

let test_file_roundtrip () =
  let rtg = two_config () in
  let path = Filename.temp_file "rtg" ".xml" in
  Rtg.save path rtg;
  let rtg' = Rtg.load path in
  Sys.remove path;
  check_bool "file round trip" true (rtg = rtg')

let prop_chain_order =
  QCheck2.Test.make ~name:"linear chains execute in order" ~count:50
    QCheck2.Gen.(int_range 1 12)
    (fun n ->
      let names = List.init n (fun i -> Printf.sprintf "c%d" i) in
      let rtg =
        {
          Rtg.rtg_name = "chain";
          initial = "c0";
          configurations =
            List.map
              (fun name ->
                { Rtg.cfg_name = name; datapath_ref = name; fsm_ref = name })
              names;
          transitions =
            (let rec pairs = function
               | a :: (b :: _ as rest) -> { Rtg.src = a; dst = b } :: pairs rest
               | [ _ ] | [] -> []
             in
             pairs names);
        }
      in
      Rtg.check rtg = [] && Rtg.execution_order rtg = names)

let suite =
  [
    ("singleton", `Quick, test_singleton);
    ("two-config order", `Quick, test_two_config_order);
    ("bad initial", `Quick, test_bad_initial);
    ("unknown endpoint", `Quick, test_unknown_endpoint);
    ("multiple outgoing", `Quick, test_multiple_outgoing);
    ("cycle detected", `Quick, test_cycle_detected);
    ("unreachable", `Quick, test_unreachable);
    ("xml round trip", `Quick, test_xml_roundtrip);
    ("file round trip", `Quick, test_file_roundtrip);
    QCheck_alcotest.to_alcotest prop_chain_order;
  ]
