(* Tests for fixed-width bit vectors. *)

let bv ~width v = Bitvec.create ~width v
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let test_create_truncates () =
  check_int "256 wraps to 0 in 8 bits" 0 (Bitvec.to_int (bv ~width:8 256));
  check_int "257 wraps to 1" 1 (Bitvec.to_int (bv ~width:8 257));
  check_int "-1 is all ones" 255 (Bitvec.to_int (bv ~width:8 (-1)))

let test_width_bounds () =
  let bad width = try ignore (bv ~width 0); false with Bitvec.Width_error _ -> true in
  check_bool "width 0 rejected" true (bad 0);
  check_bool "width 63 rejected" true (bad 63);
  check_bool "negative width rejected" true (bad (-4));
  check_int "max width accepted" Bitvec.max_width
    (Bitvec.width (bv ~width:Bitvec.max_width 1))

let test_signed_views () =
  check_int "0x80 signed" (-128) (Bitvec.to_signed (bv ~width:8 0x80));
  check_int "0x7f signed" 127 (Bitvec.to_signed (bv ~width:8 0x7f));
  check_int "0xff signed" (-1) (Bitvec.to_signed (bv ~width:8 0xff));
  check_bool "msb of 0x80" true (Bitvec.msb (bv ~width:8 0x80));
  check_bool "msb of 0x7f" false (Bitvec.msb (bv ~width:8 0x7f))

let test_arith_wraps () =
  let a = bv ~width:8 200 and b = bv ~width:8 100 in
  check_int "add wraps" 44 (Bitvec.to_int (Bitvec.add a b));
  check_int "sub wraps" 100 (Bitvec.to_int (Bitvec.sub a b));
  check_int "sub underflow" 156 (Bitvec.to_int (Bitvec.sub b a));
  check_int "mul wraps" (200 * 100 mod 256) (Bitvec.to_int (Bitvec.mul a b));
  check_int "neg" 56 (Bitvec.to_int (Bitvec.neg a))

let test_width_mismatch () =
  let raised =
    try ignore (Bitvec.add (bv ~width:8 1) (bv ~width:16 1)); false
    with Bitvec.Width_error _ -> true
  in
  check_bool "mixed-width add rejected" true raised

let test_division () =
  check_int "udiv" 6 (Bitvec.to_int (Bitvec.udiv (bv ~width:8 200) (bv ~width:8 31)));
  check_int "urem" 14 (Bitvec.to_int (Bitvec.urem (bv ~width:8 200) (bv ~width:8 31)));
  check_int "udiv by zero is all ones" 255
    (Bitvec.to_int (Bitvec.udiv (bv ~width:8 9) (bv ~width:8 0)));
  check_int "urem by zero is dividend" 9
    (Bitvec.to_int (Bitvec.urem (bv ~width:8 9) (bv ~width:8 0)));
  check_int "sdiv -7/2" (-3)
    (Bitvec.to_signed (Bitvec.sdiv (bv ~width:8 (-7)) (bv ~width:8 2)));
  check_int "srem -7 mod 2" (-1)
    (Bitvec.to_signed (Bitvec.srem (bv ~width:8 (-7)) (bv ~width:8 2)))

(* The RISC-V-style edge-case convention documented in bitvec.mli; the
   golden interpreter and both simulators all route division through
   these functions, so this is the single place the contract lives. *)
let test_division_convention () =
  check_int "sdiv by zero is -1" (-1)
    (Bitvec.to_signed (Bitvec.sdiv (bv ~width:8 (-7)) (bv ~width:8 0)));
  check_int "srem by zero is dividend" (-7)
    (Bitvec.to_signed (Bitvec.srem (bv ~width:8 (-7)) (bv ~width:8 0)));
  check_int "sdiv overflow wraps to dividend" (-128)
    (Bitvec.to_signed (Bitvec.sdiv (bv ~width:8 (-128)) (bv ~width:8 (-1))));
  check_int "srem overflow is 0" 0
    (Bitvec.to_signed (Bitvec.srem (bv ~width:8 (-128)) (bv ~width:8 (-1))));
  check_int "sdiv overflow at width 16" (-32768)
    (Bitvec.to_signed (Bitvec.sdiv (bv ~width:16 (-32768)) (bv ~width:16 (-1))))

(* Property: quotient/remainder identity q*b + r = a whenever the divisor
   is nonzero and no overflow is involved (the edge cases above pin the
   rest of the domain). *)
let prop_divmod_identity =
  QCheck2.Test.make ~name:"sdiv/srem identity q*b + r = a" ~count:300
    QCheck2.Gen.(
      int_range 2 16 >>= fun w ->
      let m = (1 lsl w) - 1 in
      map (fun (a, b) -> (w, a land m, b land m)) (pair nat nat))
    (fun (w, a, b) ->
      let va = bv ~width:w a and vb = bv ~width:w b in
      let q = Bitvec.sdiv va vb and r = Bitvec.srem va vb in
      if Bitvec.is_zero vb then
        Bitvec.to_signed q = -1 && Bitvec.equal r va
      else
        let sq = Bitvec.to_signed q
        and sr = Bitvec.to_signed r
        and sa = Bitvec.to_signed va
        and sb = Bitvec.to_signed vb in
        if sa = -(1 lsl (w - 1)) && sb = -1 then sq = sa && sr = 0
        else (sq * sb) + sr = sa && abs sr < abs sb)

let test_logic () =
  let a = bv ~width:4 0b1100 and b = bv ~width:4 0b1010 in
  check_int "and" 0b1000 (Bitvec.to_int (Bitvec.logand a b));
  check_int "or" 0b1110 (Bitvec.to_int (Bitvec.logor a b));
  check_int "xor" 0b0110 (Bitvec.to_int (Bitvec.logxor a b));
  check_int "not" 0b0011 (Bitvec.to_int (Bitvec.lognot a))

let test_shifts () =
  let a = bv ~width:8 0b1001_0110 in
  check_int "sll 2" 0b0101_1000 (Bitvec.to_int (Bitvec.shift_left a 2));
  check_int "srl 3" 0b0001_0010 (Bitvec.to_int (Bitvec.shift_right_logical a 3));
  check_int "sra 3 (negative)" 0b1111_0010
    (Bitvec.to_int (Bitvec.shift_right_arith a 3));
  check_int "sra 3 (positive)" 0b0000_1011
    (Bitvec.to_int (Bitvec.shift_right_arith (bv ~width:8 0b0101_1010) 3));
  check_int "shift by width" 0 (Bitvec.to_int (Bitvec.shift_left a 8));
  check_int "srl by width" 0 (Bitvec.to_int (Bitvec.shift_right_logical a 8));
  check_int "sra beyond width fills sign" 255
    (Bitvec.to_int (Bitvec.shift_right_arith a 100))

let test_comparisons () =
  let t = Bitvec.one 1 and f = Bitvec.zero 1 in
  let check name got want = check_bool name (Bitvec.equal got want) true in
  check "eq" (Bitvec.eq (bv ~width:8 5) (bv ~width:8 5)) t;
  check "ne" (Bitvec.ne (bv ~width:8 5) (bv ~width:8 6)) t;
  check "ult" (Bitvec.ult (bv ~width:8 5) (bv ~width:8 200)) t;
  check "ugt unsigned view" (Bitvec.ugt (bv ~width:8 0xff) (bv ~width:8 1)) t;
  check "slt signed view" (Bitvec.slt (bv ~width:8 0xff) (bv ~width:8 1)) t;
  check "sge" (Bitvec.sge (bv ~width:8 1) (bv ~width:8 (-1))) t;
  check "ule equal" (Bitvec.ule (bv ~width:8 7) (bv ~width:8 7)) t;
  check "sle strict fails" (Bitvec.sle (bv ~width:8 2) (bv ~width:8 1)) f;
  check "uge" (Bitvec.uge (bv ~width:8 2) (bv ~width:8 2)) t;
  check "sgt" (Bitvec.sgt (bv ~width:8 2) (bv ~width:8 (-3))) t

let test_structure () =
  let hi = bv ~width:4 0xA and lo = bv ~width:4 0x5 in
  let c = Bitvec.concat hi lo in
  check_int "concat" 0xA5 (Bitvec.to_int c);
  check_int "concat width" 8 (Bitvec.width c);
  check_int "slice hi" 0xA (Bitvec.to_int (Bitvec.slice c ~hi:7 ~lo:4));
  check_int "slice lo" 0x5 (Bitvec.to_int (Bitvec.slice c ~hi:3 ~lo:0));
  check_int "slice middle" 0b0010 (Bitvec.to_int (Bitvec.slice c ~hi:4 ~lo:1));
  check_int "resize up" 0xA5 (Bitvec.to_int (Bitvec.resize c 16));
  check_int "resize down" 0x5 (Bitvec.to_int (Bitvec.resize c 4));
  check_int "sresize up keeps sign" 0xFFA5
    (Bitvec.to_int (Bitvec.sresize c 16));
  check_int "sresize positive" 0x0075
    (Bitvec.to_int (Bitvec.sresize (bv ~width:8 0x75) 16))

let test_strings () =
  check_str "to_string" "8'd255" (Bitvec.to_string (bv ~width:8 255));
  check_str "binary" "10100101" (Bitvec.to_binary_string (bv ~width:8 0xA5));
  let roundtrip s = Bitvec.to_string (Bitvec.of_string s) in
  check_str "of_string decimal" "8'd255" (roundtrip "8'd255");
  check_str "of_string hex" "8'd165" (roundtrip "8'hA5");
  check_str "of_string binary" "4'd10" (roundtrip "4'b1010");
  check_str "of_string colon" "8'd7" (roundtrip "8:7");
  let bad s = try ignore (Bitvec.of_string s); false with Failure _ -> true in
  check_bool "garbage rejected" true (bad "zzz");
  check_bool "bad base rejected" true (bad "8'x41")

let test_bool_ops () =
  check_bool "of_bool true" true (Bitvec.to_bool (Bitvec.of_bool true));
  check_bool "of_bool false" false (Bitvec.to_bool (Bitvec.of_bool false));
  check_bool "to_bool nonzero" true (Bitvec.to_bool (bv ~width:8 4))

let test_bit_access () =
  let a = bv ~width:8 0b0100_0010 in
  check_bool "bit 1" true (Bitvec.bit a 1);
  check_bool "bit 0" false (Bitvec.bit a 0);
  check_bool "bit 6" true (Bitvec.bit a 6);
  let raised = try ignore (Bitvec.bit a 8); false with Bitvec.Width_error _ -> true in
  check_bool "out of range" true raised

(* Properties: bitvec arithmetic agrees with integer arithmetic mod 2^w. *)
let arb_pair =
  QCheck2.Gen.(
    int_range 1 16 >>= fun w ->
    let m = (1 lsl w) - 1 in
    map (fun (a, b) -> (w, a land m, b land m)) (pair nat nat))

let modular name f g =
  QCheck2.Test.make ~name ~count:300 arb_pair (fun (w, a, b) ->
      let m = 1 lsl w in
      Bitvec.to_int (f (bv ~width:w a) (bv ~width:w b)) = (g a b mod m + m) mod m)

let prop_add = modular "add mod 2^w" Bitvec.add ( + )
let prop_sub = modular "sub mod 2^w" Bitvec.sub ( - )
let prop_mul = modular "mul mod 2^w" Bitvec.mul ( * )

let prop_roundtrip_string =
  QCheck2.Test.make ~name:"of_string/to_string round-trip" ~count:300 arb_pair
    (fun (w, a, _) ->
      let v = bv ~width:w a in
      Bitvec.equal v (Bitvec.of_string (Bitvec.to_string v)))

let prop_concat_slice =
  QCheck2.Test.make ~name:"slice inverts concat" ~count:300
    QCheck2.Gen.(
      pair (int_range 1 16) (int_range 1 16) >>= fun (wh, wl) ->
      map (fun (a, b) -> (wh, wl, a, b)) (pair nat nat))
    (fun (wh, wl, a, b) ->
      let hi = bv ~width:wh a and lo = bv ~width:wl b in
      let c = Bitvec.concat hi lo in
      Bitvec.equal hi (Bitvec.slice c ~hi:(wh + wl - 1) ~lo:wl)
      && Bitvec.equal lo (Bitvec.slice c ~hi:(wl - 1) ~lo:0))

let prop_signed_range =
  QCheck2.Test.make ~name:"to_signed is in [-2^(w-1), 2^(w-1))" ~count:300
    arb_pair
    (fun (w, a, _) ->
      let s = Bitvec.to_signed (bv ~width:w a) in
      s >= -(1 lsl (w - 1)) && s < 1 lsl (w - 1))

let prop_shift_consistent =
  QCheck2.Test.make ~name:"shift_left = mul by power of two" ~count:300
    QCheck2.Gen.(
      pair (int_range 2 16) (int_range 0 4) >>= fun (w, n) ->
      map (fun a -> (w, n, a land ((1 lsl w) - 1))) nat)
    (fun (w, n, a) ->
      Bitvec.equal
        (Bitvec.shift_left (bv ~width:w a) n)
        (Bitvec.mul (bv ~width:w a) (bv ~width:w (1 lsl n))))

let suite =
  let qc = QCheck_alcotest.to_alcotest in
  [
    ("create truncates", `Quick, test_create_truncates);
    ("width bounds", `Quick, test_width_bounds);
    ("signed views", `Quick, test_signed_views);
    ("arithmetic wraps", `Quick, test_arith_wraps);
    ("width mismatch", `Quick, test_width_mismatch);
    ("division", `Quick, test_division);
    ("division convention", `Quick, test_division_convention);
    ("logic", `Quick, test_logic);
    ("shifts", `Quick, test_shifts);
    ("comparisons", `Quick, test_comparisons);
    ("concat/slice/resize", `Quick, test_structure);
    ("strings", `Quick, test_strings);
    ("bool ops", `Quick, test_bool_ops);
    ("bit access", `Quick, test_bit_access);
    qc prop_add;
    qc prop_sub;
    qc prop_mul;
    qc prop_roundtrip_string;
    qc prop_concat_slice;
    qc prop_signed_range;
    qc prop_shift_consistent;
    qc prop_divmod_identity;
  ]
