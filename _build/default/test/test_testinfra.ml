(* Tests for the test infrastructure: memory files, simulation driver,
   verification, metrics, artifact flow, reports. *)

module Memory = Operators.Memory
module Memfile = Testinfra.Memfile
module Simulate = Testinfra.Simulate
module Verify = Testinfra.Verify
module Metrics = Testinfra.Metrics
module Flow = Testinfra.Flow
module Report = Testinfra.Report
module Compile = Compiler.Compile

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* --- memory files ------------------------------------------------------ *)

let with_temp_file contents f =
  let path = Filename.temp_file "memfile" ".mem" in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_memfile_load () =
  with_temp_file "# header\n1\n2\n0x10\n-1\n@7\n9\n" (fun path ->
      let m = Memory.create ~width:8 10 in
      Memfile.load_into m path;
      check_int "word 0" 1 (Bitvec.to_int (Memory.read m 0));
      check_int "hex word" 16 (Bitvec.to_int (Memory.read m 2));
      check_int "negative wraps" 255 (Bitvec.to_int (Memory.read m 3));
      check_int "at directive" 9 (Bitvec.to_int (Memory.read m 7)))

let test_memfile_save_roundtrip () =
  let m = Memory.of_list ~width:8 [ 3; 1; 4; 1; 5 ] in
  let path = Filename.temp_file "memfile" ".mem" in
  Memfile.save m path;
  let m2 = Memory.create ~width:8 5 in
  Memfile.load_into m2 path;
  Sys.remove path;
  check_bool "round trip" true (Memory.equal m m2)

let test_memfile_errors () =
  with_temp_file "1\nnot-a-number\n" (fun path ->
      let raised =
        try ignore (Memfile.read_words path); false
        with Memfile.Format_error { line = 2; _ } -> true
      in
      check_bool "format error with line" true raised)

let test_memfile_load_list () =
  with_temp_file "5\n@3\n7\n" (fun path ->
      Alcotest.(check (list int)) "gap filled" [ 5; 0; 0; 7 ] (Memfile.load_list path))

let test_memfile_write_words () =
  let path = Filename.temp_file "memfile" ".mem" in
  Memfile.write_words path [ 10; 20 ];
  let words = Memfile.load_list path in
  Sys.remove path;
  Alcotest.(check (list int)) "written" [ 10; 20 ] words

let test_memfile_negative_addr_rejected () =
  with_temp_file "1\n2\n@-3\n4\n" (fun path ->
      let raised =
        try ignore (Memfile.read_words path); false
        with Memfile.Format_error { line = 3; message } ->
          Alcotest.(check bool) "mentions the address" true
            (contains "-3" message);
          true
      in
      check_bool "negative @addr rejected with line" true raised)

let test_memfile_addr_past_end_rejected () =
  with_temp_file "# header comment\n1\n@12\n4\n" (fun path ->
      let m = Memory.create ~name:"stim" ~width:8 10 in
      let raised =
        try Memfile.load_into m path; false
        with Memfile.Format_error { line = 3; message } ->
          Alcotest.(check bool) "mentions the memory" true
            (contains "stim" message);
          true
      in
      check_bool "@addr past the end rejected with line" true raised;
      (* The boundary address itself is fine. *)
      with_temp_file "@9\n7\n" (fun path2 ->
          Memfile.load_into m path2;
          check_int "last cell loaded" 7 (Bitvec.to_int (Memory.read m 9))))

let test_memfile_signed_roundtrip () =
  (* A memory full of msb-set cells must reload to identical contents
     from both renderings; the signed file must actually contain the
     negative readback values. *)
  List.iter
    (fun width ->
      let top = 1 lsl (width - 1) in
      let m =
        Memory.of_list ~width [ 0; 1; top; top + 1; (2 * top) - 1 ]
      in
      let path = Filename.temp_file "memfile" ".mem" in
      Memfile.save ~signed:true m path;
      let m2 = Memory.create ~width 5 in
      Memfile.load_into m2 path;
      Sys.remove path;
      check_bool
        (Printf.sprintf "signed round trip at width %d" width)
        true (Memory.equal m m2))
    [ 2; 8; 16; 31 ];
  let m = Memory.of_list ~width:8 [ 255; 128 ] in
  let path = Filename.temp_file "memfile" ".mem" in
  Memfile.save ~signed:true m path;
  let ic = open_in path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  check_bool "file shows -1" true (contains "-1\n" contents);
  check_bool "file shows -128" true (contains "-128" contents)

(* --- simulate ----------------------------------------------------------- *)

let compile_src src = Compile.compile (Lang.Parser.parse_string src)

let test_simulate_configuration () =
  let c = compile_src "program t width 8; mem m[4]; var a; a = 7; m[0] = a;" in
  let p = List.hd c.Compile.partitions in
  let store = Memory.create ~name:"m" ~width:8 4 in
  let run =
    Simulate.run_configuration ~memories:(fun _ -> store)
      p.Compile.datapath p.Compile.fsm
  in
  check_bool "completed" true run.Simulate.completed;
  check_int "memory written" 7 (Bitvec.to_int (Memory.read store 0));
  check_bool "cycles sane" true (run.Simulate.cycles >= 2);
  Alcotest.(check string) "final state" "halt" run.Simulate.final_state

let test_simulate_max_cycles () =
  (* An FSM that never reaches done: while(1) style loop. *)
  let c =
    compile_src "program t width 8; var a; a = 0; while (a == 0) { a = 0; }"
  in
  let p = List.hd c.Compile.partitions in
  let run =
    Simulate.run_configuration ~max_cycles:50
      ~memories:(fun _ -> failwith "none")
      p.Compile.datapath p.Compile.fsm
  in
  check_bool "not completed" false run.Simulate.completed

let test_simulate_vcd_dump () =
  let c = compile_src "program t width 8; var a; a = 7;" in
  let p = List.hd c.Compile.partitions in
  let path = Filename.temp_file "run" ".vcd" in
  let _ =
    Simulate.run_configuration ~vcd_path:path
      ~memories:(fun _ -> failwith "none")
      p.Compile.datapath p.Compile.fsm
  in
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  check_bool "vcd has clk" true (contains "clk" text);
  check_bool "vcd has fsm state" true (contains "fsm_state" text);
  check_bool "vcd has changes" true (contains "#" text)

let test_simulate_rtg_sequences_partitions () =
  let c =
    compile_src
      "program t width 8; mem m[4]; var a; var b; a = 1; m[0] = a; partition; b = m[0]; m[1] = b + 1;"
  in
  let store = Memory.create ~name:"m" ~width:8 4 in
  let run = Simulate.run_compiled ~memories:(fun _ -> store) c in
  check_bool "all completed" true run.Simulate.all_completed;
  check_int "two runs" 2 (List.length run.Simulate.runs);
  check_int "partition 2 saw partition 1's data" 2
    (Bitvec.to_int (Memory.read store 1))

(* --- verify -------------------------------------------------------------- *)

let test_verify_pass () =
  let outcome =
    Verify.run_source ~inits:[ ("a", [ 1; 2 ]); ("b", [ 3; 4 ]) ]
      (Workloads.Kernels.vecadd_source ~n:2)
  in
  check_bool "passed" true outcome.Verify.passed;
  check_bool "all memories match" true
    (List.for_all (fun m -> m.Verify.matches) outcome.Verify.memories);
  check_int "no out-of-range accesses" 0
    (outcome.Verify.golden_oob + outcome.Verify.hw_oob)

let test_verify_golden_oob_fails () =
  (* The index is computed at runtime so no static check can reject it:
     the golden model reads past the end of [m], which must fail the
     verification even though the stray read returns 0 on both sides and
     the memories still compare equal. *)
  let src =
    "program oob width 8; mem m[4]; mem out[1]; var i; var x; i = 6; x = \
     m[i + 3]; out[0] = 1;"
  in
  let outcome = Verify.run_source ~inits:[ ("m", [ 1; 2; 3; 4 ]) ] src in
  check_bool "golden oob counted" true (outcome.Verify.golden_oob > 0);
  check_bool "oob flagged" true outcome.Verify.oob_failed;
  check_bool "verification fails" false outcome.Verify.passed;
  check_bool "memories still compare equal" true
    (List.for_all (fun m -> m.Verify.matches) outcome.Verify.memories);
  check_bool "one-liner explains" true
    (contains "out-of-range" (Report.one_line outcome))

let test_verify_hw_oob_warns_by_default () =
  (* fir's inner loop computes [idx = i - j] before guarding it, so the
     sram's async read port transiently presents wrapped addresses: the
     hardware counter is nonzero while the golden run is clean. That is
     a warning by default and a failure only in strict mode. *)
  let src = Workloads.Kernels.fir_source ~taps:[ 1; 2; 3 ] ~n:6 in
  let input = [ 1; 2; 3; 4; 5; 6 ] in
  let outcome = Verify.run_source ~inits:[ ("input", input) ] src in
  check_int "golden run clean" 0 outcome.Verify.golden_oob;
  check_bool "hw transients observed" true (outcome.Verify.hw_oob > 0);
  check_bool "passes by default" true outcome.Verify.passed;
  let strict =
    Verify.run_source ~fail_on_oob:true ~inits:[ ("input", input) ] src
  in
  check_bool "strict mode fails" false strict.Verify.passed;
  check_bool "strict oob flagged" true strict.Verify.oob_failed;
  check_bool "report shows the counts" true
    (contains "out-of-range" (Report.verification_to_string strict))

let test_verify_detects_wrong_memory_init () =
  (* Different initial contents for the two runs cannot happen through the
     public API; instead corrupt the compiled design: drop the memory
     write by renaming its FSM setting. We simulate a compiler bug by
     compiling a program whose golden model and hardware use different
     sources. Easiest honest check: corrupt the hardware memory after
     simulation is impossible, so instead verify a deliberately
     miscompiled program — one whose [check] we bypass by editing the
     FSM: the 'we' control is forced to 0 so the store never happens. *)
  let prog =
    Lang.Parser.parse_string "program t width 8; mem m[2]; var a; a = 5; m[0] = a;"
  in
  let compiled = Compile.compile prog in
  let p = List.hd compiled.Compile.partitions in
  let sabotaged_fsm =
    let fsm = p.Compile.fsm in
    {
      fsm with
      Fsmkit.Fsm.states =
        List.map
          (fun (s : Fsmkit.Fsm.state) ->
            {
              s with
              Fsmkit.Fsm.settings =
                List.filter (fun (n, _) -> n <> "m_we") s.Fsmkit.Fsm.settings;
            })
          fsm.Fsmkit.Fsm.states;
    }
  in
  (* Run both models by hand. *)
  let golden_lookup, golden_stores = Verify.memory_env prog ~inits:[] in
  let hw_lookup, hw_stores = Verify.memory_env prog ~inits:[] in
  let _ = Lang.Interp.run ~memories:golden_lookup prog in
  let _ =
    Simulate.run_configuration ~memories:hw_lookup p.Compile.datapath sabotaged_fsm
  in
  let golden = List.assoc "m" golden_stores and hw = List.assoc "m" hw_stores in
  check_bool "difference detected" false (Memory.equal golden hw)

let test_verify_failure_injection_netlist () =
  (* Corrupting a const operator's value must be caught by comparison. *)
  let prog =
    Lang.Parser.parse_string
      "program t width 8; mem m[2]; var a; a = 5; m[0] = a + 2;"
  in
  let compiled = Compile.compile prog in
  let p = List.hd compiled.Compile.partitions in
  let corrupt_dp =
    let dp = p.Compile.datapath in
    {
      dp with
      Netlist.Datapath.operators =
        List.map
          (fun (op : Netlist.Datapath.operator) ->
            if op.Netlist.Datapath.kind = "const"
               && List.assoc_opt "value" op.Netlist.Datapath.params = Some "2"
            then { op with Netlist.Datapath.params = [ ("value", "3") ] }
            else op)
          dp.Netlist.Datapath.operators;
    }
  in
  let golden_lookup, golden_stores = Verify.memory_env prog ~inits:[] in
  let hw_lookup, hw_stores = Verify.memory_env prog ~inits:[] in
  let _ = Lang.Interp.run ~memories:golden_lookup prog in
  let run = Simulate.run_configuration ~memories:hw_lookup corrupt_dp p.Compile.fsm in
  check_bool "still completes" true run.Simulate.completed;
  check_bool "corruption detected by comparison" false
    (Memory.equal (List.assoc "m" golden_stores) (List.assoc "m" hw_stores))

let test_verify_report_rendering () =
  let outcome =
    Verify.run_source ~inits:[ ("a", [ 1 ]); ("b", [ 2 ]) ]
      (Workloads.Kernels.vecadd_source ~n:1)
  in
  let text = Report.verification_to_string outcome in
  check_bool "mentions PASS" true (contains "PASS" text);
  check_bool "per-memory lines" true (contains "memory c" text);
  check_bool "one-line form" true (contains "PASS vecadd" (Report.one_line outcome))

(* --- metrics -------------------------------------------------------------- *)

let test_metrics_row () =
  let src = Workloads.Kernels.sum_source ~n:8 in
  let outcome = Verify.run_source ~inits:[ ("input", [ 1; 2; 3; 4; 5; 6; 7; 8 ]) ] src in
  let row = Metrics.collect ~source:src outcome in
  check_bool "source lines counted" true (row.Metrics.lo_source > 5);
  check_int "one configuration" 1 (List.length row.Metrics.operators);
  check_bool "xml lines counted" true (List.hd row.Metrics.lo_xml_datapath > 20);
  check_bool "generated code lines" true (List.hd row.Metrics.lo_gen_fsm > 10);
  check_bool "passed" true row.Metrics.passed;
  let table = Metrics.render_table [ row ] in
  check_bool "table header" true (contains "loXML datapath" table);
  check_bool "table row" true (contains "sum" table)

(* --- flow ------------------------------------------------------------------ *)

let test_flow_emit_all () =
  let c =
    compile_src "program t width 8; mem m[4]; var a; a = m[0]; partition; m[1] = 3;"
  in
  let dir = Filename.temp_file "flow" "" in
  Sys.remove dir;
  let artifacts = Flow.emit_all ~dir c in
  let paths = List.map (fun a -> a.Flow.path) artifacts in
  check_bool "datapath xml emitted" true (List.mem "t_p1_dp.xml" paths);
  check_bool "fsm dot emitted" true (List.mem "t_p1_fsm.dot" paths);
  check_bool "verilog emitted" true (List.mem "t_p2_dp.v" paths);
  check_bool "vhdl emitted" true (List.mem "t_p2_dp.vhd" paths);
  check_bool "systemc emitted" true (List.mem "t_p2_dp.cpp" paths);
  check_bool "generated code emitted" true (List.mem "t_p1_fsm.ml" paths);
  check_bool "rtg artifacts" true (List.mem "t_rtg.xml" paths);
  (* Emitted XML must reload. *)
  let dp = Netlist.Datapath.load (Filename.concat dir "t_p1_dp.xml") in
  check_bool "reloaded datapath valid" true (Netlist.Datapath.check dp = []);
  List.iter (fun p -> Sys.remove (Filename.concat dir p)) paths;
  Sys.rmdir dir

(* --- bundle ------------------------------------------------------------------ *)

let test_bundle_roundtrip () =
  let c =
    compile_src
      "program bt width 8; mem m[4]; var a; a = m[0] + 1; m[1] = a; partition; m[2] = 9;"
  in
  let dir = Filename.temp_file "bundle" "" in
  Sys.remove dir;
  Testinfra.Bundle.save ~dir c;
  let bundle = Testinfra.Bundle.load ~dir in
  check_int "two configurations" 2 (Rtg.configuration_count bundle.Testinfra.Bundle.rtg);
  Alcotest.(check (list (triple string int int)))
    "memory inventory" [ ("m", 4, 8) ]
    (Testinfra.Bundle.memories_of_bundle bundle);
  (* Simulate from the loaded XML and compare with direct simulation. *)
  let store1 = Memory.of_list ~name:"m" ~width:8 [ 5; 0; 0; 0 ] in
  let run1 = Testinfra.Bundle.simulate ~memories:(fun _ -> store1) bundle in
  check_bool "bundle run completes" true run1.Simulate.all_completed;
  let store2 = Memory.of_list ~name:"m" ~width:8 [ 5; 0; 0; 0 ] in
  let _ = Simulate.run_compiled ~memories:(fun _ -> store2) c in
  check_bool "same results as direct simulation" true (Memory.equal store1 store2);
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let test_bundle_missing_document () =
  let c = compile_src "program bm width 8; var a; a = 1;" in
  let dir = Filename.temp_file "bundle" "" in
  Sys.remove dir;
  Testinfra.Bundle.save ~dir c;
  Sys.remove (Filename.concat dir "bm_dp.xml");
  let raised =
    try ignore (Testinfra.Bundle.load ~dir); false with Failure _ -> true
  in
  check_bool "missing document detected" true raised;
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

(* --- waves ------------------------------------------------------------------ *)

let test_waves_render () =
  let engine = Sim.Engine.create () in
  let clk = Sim.Engine.signal engine ~name:"clk" 1 in
  let bus = Sim.Engine.signal engine ~name:"bus" 8 in
  let p_clk = Sim.Probe.attach engine clk in
  let p_bus = Sim.Probe.attach engine bus in
  Sim.Engine.drive engine clk ~delay:5 (Bitvec.one 1);
  Sim.Engine.drive engine clk ~delay:10 (Bitvec.zero 1);
  Sim.Engine.drive engine bus ~delay:7 (Bitvec.create ~width:8 42);
  ignore (Sim.Engine.run engine);
  let text = Testinfra.Waves.render [ ("clk", p_clk); ("bus", p_bus) ] in
  check_bool "time ruler" true (contains "time" text);
  check_bool "high segment" true (contains "########" text);
  check_bool "low segment" true (contains "________" text);
  check_bool "bus value" true (contains "|42" text);
  (* 4 distinct change times -> ruler mentions 7 *)
  check_bool "time 7 on ruler" true (contains "7" text)

let test_waves_max_events () =
  let samples =
    List.init 100 (fun i -> (i, Bitvec.create ~width:4 (i mod 16)))
  in
  let text = Testinfra.Waves.render_samples ~max_events:5 [ ("s", samples) ] in
  check_bool "truncated" true (String.length text < 400)

(* --- suite ------------------------------------------------------------------ *)

let test_suite_run_and_render () =
  let cases =
    [
      {
        Testinfra.Suite.case_name = "ok";
        source = "program ok width 8; mem m[2]; var a; a = 3; m[0] = a;";
        inits = [];
      };
      {
        (* Finite in software but needs more hardware cycles than the
           budget below allows: the configuration never completes. *)
        Testinfra.Suite.case_name = "slow";
        source =
          "program slow width 16; var i; for (i = 0; i < 50; i = i + 1) { i = i; }";
        inits = [];
      };
    ]
  in
  let results, summary =
    Testinfra.Suite.run
      ~variants:[ List.hd Testinfra.Suite.default_variants ]
      ~max_cycles:10 cases
  in
  check_int "two cases" 2 summary.Testinfra.Suite.cases;
  check_int "one failure" 1 (List.length summary.Testinfra.Suite.failures);
  check_bool "slow case failed" true
    (List.mem_assoc "slow" summary.Testinfra.Suite.failures);
  let text = Testinfra.Suite.render (results, summary) in
  check_bool "renders PASS" true (contains "PASS" text);
  check_bool "renders FAIL" true (contains "FAIL" text);
  check_bool "lists failure" true (contains "FAILED: slow" text)

let test_suite_variants () =
  let case =
    {
      Testinfra.Suite.case_name = "mini";
      source = "program mini width 16; mem m[2]; var a; a = 4 * 4; m[0] = a;";
      inits = [];
    }
  in
  let results, summary = Testinfra.Suite.run [ case ] in
  check_int "four variants" 4 summary.Testinfra.Suite.variants_run;
  check_bool "no failures" true (summary.Testinfra.Suite.failures = []);
  let r = List.hd results in
  Alcotest.(check (list string)) "variant names"
    [ "plain"; "shared"; "optimized"; "folded" ]
    (List.map fst r.Testinfra.Suite.outcomes)

let test_suite_load_dir () =
  let dir = Filename.temp_file "suite" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let write name contents =
    let oc = open_out (Filename.concat dir name) in
    output_string oc contents;
    close_out oc
  in
  write "double.alg"
    "program double width 8; mem input[3]; mem output[3]; var i; var x;\n\
     for (i = 0; i < 3; i = i + 1) { x = input[i]; output[i] = x + x; }";
  write "double.input.mem" "5\n6\n7\n";
  let cases = Testinfra.Suite.load_dir dir in
  check_int "one case" 1 (List.length cases);
  let case = List.hd cases in
  Alcotest.(check string) "name" "double" case.Testinfra.Suite.case_name;
  check_bool "stimulus loaded" true
    (case.Testinfra.Suite.inits = [ ("input", [ 5; 6; 7 ]) ]);
  let _, summary = Testinfra.Suite.run ~variants:[ List.hd Testinfra.Suite.default_variants ] cases in
  check_bool "case verifies" true (summary.Testinfra.Suite.failures = []);
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let test_suite_builtin_cases_parse () =
  List.iter
    (fun (c : Testinfra.Suite.case) ->
      check_bool c.Testinfra.Suite.case_name true
        (Lang.Check.check (Lang.Parser.parse_string c.Testinfra.Suite.source) = []))
    (Testinfra.Suite.builtin_cases ())

let test_flow_infrastructure_diagram () =
  let g = Flow.infrastructure_diagram () in
  let dot = Dotkit.Dot.to_string g in
  check_bool "compiler node" true (contains "high-level compiler" dot);
  check_bool "xml docs" true (contains "\"datapath.xml\"" dot);
  check_bool "simulator node" true (contains "event-driven simulator" dot);
  check_bool "io files node" true (contains "RAMs and stimulus" dot);
  check_bool "comparison node" true (contains "memory comparison" dot);
  check_bool "one tool per translation" true
    (Dotkit.Dot.node_count g > List.length Flow.translations)

let suite =
  [
    ("memfile load", `Quick, test_memfile_load);
    ("memfile save round trip", `Quick, test_memfile_save_roundtrip);
    ("memfile errors", `Quick, test_memfile_errors);
    ("memfile load_list", `Quick, test_memfile_load_list);
    ("memfile write_words", `Quick, test_memfile_write_words);
    ("memfile negative @addr rejected", `Quick, test_memfile_negative_addr_rejected);
    ("memfile @addr past end rejected", `Quick, test_memfile_addr_past_end_rejected);
    ("memfile signed round trip", `Quick, test_memfile_signed_roundtrip);
    ("simulate configuration", `Quick, test_simulate_configuration);
    ("simulate max cycles", `Quick, test_simulate_max_cycles);
    ("simulate vcd dump", `Quick, test_simulate_vcd_dump);
    ("simulate rtg sequences partitions", `Quick, test_simulate_rtg_sequences_partitions);
    ("verify pass", `Quick, test_verify_pass);
    ("verify fails on golden oob", `Quick, test_verify_golden_oob_fails);
    ("verify warns on hw-only oob", `Quick, test_verify_hw_oob_warns_by_default);
    ("verify detects dropped store", `Quick, test_verify_detects_wrong_memory_init);
    ("verify detects corrupted const", `Quick, test_verify_failure_injection_netlist);
    ("verify report rendering", `Quick, test_verify_report_rendering);
    ("metrics row", `Quick, test_metrics_row);
    ("flow emit all", `Quick, test_flow_emit_all);
    ("bundle round trip", `Quick, test_bundle_roundtrip);
    ("bundle missing document", `Quick, test_bundle_missing_document);
    ("waves render", `Quick, test_waves_render);
    ("waves max events", `Quick, test_waves_max_events);
    ("suite run and render", `Quick, test_suite_run_and_render);
    ("suite variants", `Quick, test_suite_variants);
    ("suite load dir", `Quick, test_suite_load_dir);
    ("suite builtin cases parse", `Quick, test_suite_builtin_cases_parse);
    ("flow infrastructure diagram", `Quick, test_flow_infrastructure_diagram);
  ]
