(* Tests for the levelized cycle-based simulator, including exact
   equivalence with the event-driven kernel. *)

module Compile = Compiler.Compile
module Verify = Testinfra.Verify
module Simulate = Testinfra.Simulate
module Memory = Operators.Memory

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let compile src = Compile.compile (Lang.Parser.parse_string src)

(* Run one single-partition program under both simulators; return the
   final memory images and cycle counts. *)
let run_both src inits =
  let prog = Lang.Parser.parse_string src in
  let compiled = compile src in
  let p = List.hd compiled.Compile.partitions in
  (* Event-driven. *)
  let ev_lookup, ev_stores = Verify.memory_env prog ~inits in
  let ev =
    Simulate.run_configuration ~memories:ev_lookup p.Compile.datapath
      p.Compile.fsm
  in
  (* Cycle-based. *)
  let cy_lookup, cy_stores = Verify.memory_env prog ~inits in
  let cy = Cyclesim.create ~memories:cy_lookup p.Compile.datapath p.Compile.fsm in
  let outcome = Cyclesim.run cy in
  ( (ev, List.map (fun (n, m) -> (n, Memory.to_list m)) ev_stores),
    (cy, outcome, List.map (fun (n, m) -> (n, Memory.to_list m)) cy_stores) )

let test_equivalence_hamming () =
  let codes = Workloads.Hamming.make_codewords ~n:32 ~seed:9 in
  let (ev, ev_mems), (cy, outcome, cy_mems) =
    run_both (Workloads.Hamming.source ~n:32) [ ("input", codes) ]
  in
  check_bool "event run completed" true ev.Simulate.completed;
  check_bool "cycle run done" true (outcome = `Done);
  check_bool "memories identical" true (ev_mems = cy_mems);
  check_int "cycle counts identical" ev.Simulate.cycles (Cyclesim.cycles cy)

let test_equivalence_fdct () =
  let img = Workloads.Fdct.make_image ~width_px:8 ~height_px:8 ~seed:12 in
  let (ev, ev_mems), (cy, outcome, cy_mems) =
    run_both (Workloads.Fdct.source ~width_px:8 ~height_px:8 ()) [ ("input", img) ]
  in
  check_bool "both complete" true (ev.Simulate.completed && outcome = `Done);
  check_bool "memories identical" true (ev_mems = cy_mems);
  check_int "cycle counts identical" ev.Simulate.cycles (Cyclesim.cycles cy)

let test_port_and_state_access () =
  let (_, _), (cy, outcome, _) =
    run_both "program t width 8; var a; a = 7;" []
  in
  check_bool "done" true (outcome = `Done);
  Alcotest.(check string) "final state" "halt" (Cyclesim.current_state cy);
  check_int "register value" 7 (Bitvec.to_int (Cyclesim.port_value cy "r_a.q"))

let test_max_cycles () =
  let compiled = compile "program t width 8; var a; while (a == 0) { a = 0; }" in
  let p = List.hd compiled.Compile.partitions in
  let cy = Cyclesim.create ~memories:(fun _ -> failwith "none") p.Compile.datapath p.Compile.fsm in
  check_bool "hits bound" true (Cyclesim.run ~max_cycles:100 cy = `Max_cycles)

let test_check_failures_counted () =
  let compiled =
    compile "program t width 16; var i; for (i = 0; i < 4; i = i + 1) { assert (i < 2); }"
  in
  let p = List.hd compiled.Compile.partitions in
  let cy = Cyclesim.create ~memories:(fun _ -> failwith "none") p.Compile.datapath p.Compile.fsm in
  check_bool "done" true (Cyclesim.run cy = `Done);
  check_int "two violations" 2 (Cyclesim.check_failures cy)

let test_shared_design_rejected () =
  (* Operator sharing creates structural combinational cycles the
     levelized evaluator cannot order; it must refuse, not mis-simulate. *)
  (* One state computes mul -> add, another add -> mul: with pooled
     instances the two shared units feed each other structurally. *)
  let src =
    "program t width 16; var a; var b; a = a * b + 1; b = (a + 2) * b;"
  in
  let compiled =
    Compile.compile
      ~options:{ Compile.share_operators = true; optimize = false; fold_branches = false }
      (Lang.Parser.parse_string src)
  in
  let p = List.hd compiled.Compile.partitions in
  let raised =
    try
      ignore
        (Cyclesim.create ~memories:(fun _ -> failwith "none")
           p.Compile.datapath p.Compile.fsm);
      false
    with Cyclesim.Combinational_cycle _ -> true
  in
  check_bool "combinational cycle rejected" true raised

let random_program =
  QCheck2.Gen.(
    let piece =
      oneofl
        [
          "a = a + 1;";
          "b = a * 3 - b;";
          "m[0] = a;";
          "a = m[1] ^ b;";
          "if (a > b) { a = a - b; } else { b = b + 2; }";
          "while (a < 15) { a = a + 4; }";
          "m[a & 3] = b;";
          "assert (a < 100);";
        ]
    in
    list_size (int_range 1 8) piece >|= fun stmts ->
    "program rnd width 16; mem m[4]; var a; var b;\na = 2; b = 5;\n"
    ^ String.concat "\n" stmts)

let prop_equivalence =
  QCheck2.Test.make
    ~name:"cycle-based = event-driven (memories and cycle count)" ~count:40
    random_program
    (fun src ->
      let (ev, ev_mems), (cy, outcome, cy_mems) =
        run_both src [ ("m", [ 3; 1; 4; 1 ]) ]
      in
      ev.Simulate.completed && outcome = `Done && ev_mems = cy_mems
      && ev.Simulate.cycles = Cyclesim.cycles cy)

let suite =
  [
    ("equivalence on hamming", `Quick, test_equivalence_hamming);
    ("equivalence on fdct", `Quick, test_equivalence_fdct);
    ("port and state access", `Quick, test_port_and_state_access);
    ("max cycles", `Quick, test_max_cycles);
    ("check failures counted", `Quick, test_check_failures_counted);
    ("shared design rejected", `Quick, test_shared_design_rejected);
    QCheck_alcotest.to_alcotest prop_equivalence;
  ]
