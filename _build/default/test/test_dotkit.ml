(* Tests for the Graphviz dot builder. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_empty_graph () =
  let g = Dotkit.Dot.create "g" in
  let s = Dotkit.Dot.to_string g in
  check_bool "header" true (contains ~needle:"digraph \"g\" {" s);
  check_bool "footer" true (contains ~needle:"}" s);
  check_int "no nodes" 0 (Dotkit.Dot.node_count g)

let test_nodes_and_edges () =
  let g = Dotkit.Dot.create "fsm" ~graph_attrs:[ ("rankdir", "LR") ] in
  Dotkit.Dot.add_node g "s0" ~attrs:[ ("shape", "circle") ];
  Dotkit.Dot.add_node g "s1";
  Dotkit.Dot.add_edge g "s0" "s1" ~attrs:[ ("label", "start") ];
  let s = Dotkit.Dot.to_string g in
  check_bool "rankdir" true (contains ~needle:"rankdir=\"LR\";" s);
  check_bool "node attrs" true (contains ~needle:"\"s0\" [shape=\"circle\"];" s);
  check_bool "edge" true (contains ~needle:"\"s0\" -> \"s1\" [label=\"start\"];" s);
  check_int "nodes" 2 (Dotkit.Dot.node_count g);
  check_int "edges" 1 (Dotkit.Dot.edge_count g)

let test_node_redeclaration_replaces () =
  let g = Dotkit.Dot.create "g" in
  Dotkit.Dot.add_node g "n" ~attrs:[ ("color", "red") ];
  Dotkit.Dot.add_node g "n" ~attrs:[ ("color", "blue") ];
  let s = Dotkit.Dot.to_string g in
  check_int "one node" 1 (Dotkit.Dot.node_count g);
  check_bool "latest attrs win" true (contains ~needle:"color=\"blue\"" s);
  check_bool "old attrs gone" false (contains ~needle:"color=\"red\"" s)

let test_quote_escapes () =
  Alcotest.(check string) "quotes" "\"a\\\"b\\nc\"" (Dotkit.Dot.quote "a\"b\nc")

let test_rank_same () =
  let g = Dotkit.Dot.create "g" in
  Dotkit.Dot.add_node g "a";
  Dotkit.Dot.add_node g "b";
  Dotkit.Dot.add_rank_same g [ "a"; "b" ];
  check_bool "rank line" true
    (contains ~needle:"{ rank=same; \"a\"; \"b\" }" (Dotkit.Dot.to_string g))

let test_defaults () =
  let g =
    Dotkit.Dot.create "g"
      ~node_defaults:[ ("shape", "box") ]
      ~edge_defaults:[ ("arrowsize", "0.7") ]
  in
  let s = Dotkit.Dot.to_string g in
  check_bool "node defaults" true (contains ~needle:"node [shape=\"box\"];" s);
  check_bool "edge defaults" true (contains ~needle:"edge [arrowsize=\"0.7\"];" s)

let test_save () =
  let g = Dotkit.Dot.create "g" in
  Dotkit.Dot.add_node g "x";
  let path = Filename.temp_file "dotkit" ".dot" in
  Dotkit.Dot.save path g;
  let ic = open_in path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  check_bool "file written" true (contains ~needle:"\"x\";" contents)

let prop_parallel_edges =
  QCheck2.Test.make ~name:"edge count tracks insertions" ~count:100
    QCheck2.Gen.(int_range 0 50)
    (fun n ->
      let g = Dotkit.Dot.create "g" in
      for _ = 1 to n do
        Dotkit.Dot.add_edge g "a" "b"
      done;
      Dotkit.Dot.edge_count g = n)

let suite =
  [
    ("empty graph", `Quick, test_empty_graph);
    ("nodes and edges", `Quick, test_nodes_and_edges);
    ("node redeclaration", `Quick, test_node_redeclaration_replaces);
    ("quote escapes", `Quick, test_quote_escapes);
    ("rank same", `Quick, test_rank_same);
    ("defaults", `Quick, test_defaults);
    ("save", `Quick, test_save);
    QCheck_alcotest.to_alcotest prop_parallel_edges;
  ]
