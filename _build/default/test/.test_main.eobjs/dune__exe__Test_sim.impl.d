test/test_sim.ml: Alcotest Array Bitvec Clock Engine Event_heap Format List Printf Probe QCheck2 QCheck_alcotest Sim
