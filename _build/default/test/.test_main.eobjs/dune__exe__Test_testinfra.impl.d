test/test_testinfra.ml: Alcotest Array Bitvec Compiler Dotkit Filename Fsmkit Fun Lang List Netlist Operators Printf Rtg Sim String Sys Testinfra Workloads
