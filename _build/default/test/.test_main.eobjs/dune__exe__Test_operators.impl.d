test/test_operators.ml: Alcotest Bitvec Clock Engine List Operators QCheck2 QCheck_alcotest Sim
