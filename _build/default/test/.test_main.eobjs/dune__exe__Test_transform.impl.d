test/test_transform.ml: Alcotest Bitvec Dotkit Engine Fsmkit List Netlist Operators Rtg Sim String Transform
