test/test_rtg.ml: Alcotest Filename List Printf QCheck2 QCheck_alcotest Rtg String Sys Xmlkit
