test/test_vcd.ml: Alcotest Bitvec Engine Filename List Printf Sim String Sys Vcd
