test/test_lang.ml: Alcotest Bitvec Lang List Operators Printf QCheck2 QCheck_alcotest String Testinfra Workloads
