test/test_xmlkit.ml: Alcotest Filename List Option QCheck2 QCheck_alcotest String Sys Xml Xml_parser Xml_query Xmlkit
