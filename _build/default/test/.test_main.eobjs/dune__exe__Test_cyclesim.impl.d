test/test_cyclesim.ml: Alcotest Bitvec Compiler Cyclesim Lang List Operators QCheck2 QCheck_alcotest String Testinfra Workloads
