test/test_netlist.ml: Alcotest Filename List Netlist QCheck2 QCheck_alcotest String Sys Xmlkit
