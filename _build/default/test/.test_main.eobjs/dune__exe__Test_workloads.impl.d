test/test_workloads.ml: Alcotest Hashtbl Lang List Operators Printf QCheck2 QCheck_alcotest Workloads
