test/test_workloads.ml: Alcotest Lang List Printf QCheck2 QCheck_alcotest Workloads
