test/test_integration.ml: Alcotest Bitvec Compiler Lang List Operators QCheck2 QCheck_alcotest String Testinfra Workloads
