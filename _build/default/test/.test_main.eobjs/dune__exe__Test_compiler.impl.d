test/test_compiler.ml: Alcotest Array Compiler Fsmkit Lang List Netlist Operators QCheck2 QCheck_alcotest Rtg String Testinfra Workloads
