test/test_fsmkit.ml: Alcotest Filename Fsmkit List Option QCheck2 QCheck_alcotest String Sys Xmlkit
