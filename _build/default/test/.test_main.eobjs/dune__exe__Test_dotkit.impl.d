test/test_dotkit.ml: Alcotest Dotkit Filename QCheck2 QCheck_alcotest String Sys
