test/test_cosim.ml: Alcotest Array Bitvec Compiler Cosim Lang List Operators Sim Testinfra Workloads
