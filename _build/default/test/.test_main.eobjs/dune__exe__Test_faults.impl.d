test/test_faults.ml: Alcotest Bitvec Compiler Cyclesim Faults Fun Lang List Operators String Testinfra
