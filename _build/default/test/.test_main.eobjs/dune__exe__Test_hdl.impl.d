test/test_hdl.ml: Alcotest Compiler Fsmkit Hdl Lang List Netlist String Workloads
