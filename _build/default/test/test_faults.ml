(* Tests for the fault model and mutation campaigns: deterministic plans,
   identical semantics of the injection hooks in both simulation kernels,
   and the verifier demonstrably killing every fault class. *)

module Compile = Compiler.Compile
module Fault = Faults.Fault
module Faulty = Operators.Faulty
module Memory = Operators.Memory
module Verify = Testinfra.Verify
module Simulate = Testinfra.Simulate
module Faultcamp = Testinfra.Faultcamp

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let bv ~width v = Bitvec.create ~width v

let vecadd_case () =
  match Faultcamp.find_workload "vecadd" with
  | Some c -> c
  | None -> Alcotest.fail "vecadd workload missing"

let compile_workload (c : Testinfra.Suite.case) =
  Compile.compile (Lang.Parser.parse_string c.Testinfra.Suite.source)

(* --- perturbation primitives ------------------------------------------- *)

let test_stuck_at () =
  let v = bv ~width:8 0b1010_1010 in
  check_int "stuck-at-1 bit 0" 0b1010_1011
    (Bitvec.to_int (Faulty.stuck_at ~bit:0 ~value:true v));
  check_int "stuck-at-0 bit 1" 0b1010_1000
    (Bitvec.to_int (Faulty.stuck_at ~bit:1 ~value:false v));
  check_int "stuck-at keeps width" 8
    (Bitvec.width (Faulty.stuck_at ~bit:7 ~value:true v))

let test_bit_flip () =
  let v = bv ~width:8 0b1010_1010 in
  check_int "flip bit 1" 0b1010_1000 (Bitvec.to_int (Faulty.bit_flip ~bit:1 v));
  check_bool "flip twice restores" true
    (Bitvec.equal v (Faulty.bit_flip ~bit:3 (Faulty.bit_flip ~bit:3 v)))

let test_bad_bit_rejected () =
  let v = bv ~width:4 5 in
  let raised f = try ignore (f v); false with Invalid_argument _ -> true in
  check_bool "stuck-at bit 4 of width 4" true
    (raised (Faulty.stuck_at ~bit:4 ~value:true));
  check_bool "flip bit 9 of width 4" true (raised (Faulty.bit_flip ~bit:9))

(* --- plan generation ---------------------------------------------------- *)

let test_plan_deterministic () =
  let compiled = compile_workload (vecadd_case ()) in
  let p1 = Fault.plan ~seed:42 ~n:20 compiled in
  let p2 = Fault.plan ~seed:42 ~n:20 compiled in
  check_bool "same seed, same plan" true (p1 = p2);
  let p3 = Fault.plan ~seed:43 ~n:20 compiled in
  check_bool "different seed, different plan" true (p1 <> p3)

let test_plan_covers_all_classes () =
  let compiled = compile_workload (vecadd_case ()) in
  let plan = Fault.plan ~seed:1 ~n:20 compiled in
  check_int "twenty faults planned" 20 (List.length plan);
  List.iter
    (fun cls ->
      check_bool (cls ^ " represented") true
        (List.exists (fun f -> Fault.fault_class f = cls) plan))
    Fault.all_classes

let test_plan_distinct () =
  let compiled = compile_workload (vecadd_case ()) in
  let plan = Fault.plan ~seed:7 ~n:30 compiled in
  let sites = List.map (fun (f : Fault.t) -> f.Fault.kind) plan in
  check_int "no duplicate faults" (List.length sites)
    (List.length (List.sort_uniq compare sites))

let test_rng_deterministic () =
  let seq seed =
    let rng = Fault.Rng.create ~seed in
    List.init 50 (fun _ -> Fault.Rng.int rng 1000)
  in
  check_bool "same stream" true (seq 5 = seq 5);
  check_bool "streams differ by seed" true (seq 5 <> seq 6);
  let rng = Fault.Rng.create ~seed:9 in
  check_bool "bounded" true
    (List.for_all
       (fun _ ->
         let v = Fault.Rng.int rng 17 in
         v >= 0 && v < 17)
       (List.init 200 Fun.id))

(* --- injection hooks agree across simulation kernels -------------------- *)

(* Apply the identical perturbation through the event-driven engine's
   corrupt_signal and the cycle simulator's corrupt hook: both kernels
   must land on the same memories and cycle count. *)
let run_both_with_fault src inits ~port ~perturb =
  let prog = Lang.Parser.parse_string src in
  let compiled = Compile.compile prog in
  let p = List.hd compiled.Compile.partitions in
  let ev_lookup, ev_stores = Verify.memory_env prog ~inits in
  let ev =
    Simulate.run_configuration
      ~injections:
        [ { Simulate.inj_cfg = None; inj_port = port; inj_transform = perturb } ]
      ~memories:ev_lookup p.Compile.datapath p.Compile.fsm
  in
  let cy_lookup, cy_stores = Verify.memory_env prog ~inits in
  let cy =
    Cyclesim.create
      ~corrupt:(fun key -> if key = port then Some perturb else None)
      ~memories:cy_lookup p.Compile.datapath p.Compile.fsm
  in
  let outcome = Cyclesim.run ~max_cycles:2000 cy in
  ( (ev, List.map (fun (n, m) -> (n, Memory.to_list m)) ev_stores),
    (cy, outcome, List.map (fun (n, m) -> (n, Memory.to_list m)) cy_stores) )

let test_kernels_agree_under_fault () =
  let case = vecadd_case () in
  List.iter
    (fun (port, perturb) ->
      let (ev, ev_mems), (cy, _, cy_mems) =
        run_both_with_fault case.Testinfra.Suite.source
          case.Testinfra.Suite.inits ~port ~perturb
      in
      check_bool (port ^ ": same memories") true (ev_mems = cy_mems);
      check_int (port ^ ": same cycles") ev.Simulate.cycles (Cyclesim.cycles cy))
    [
      ("add0.y", Faulty.bit_flip ~bit:2);
      ("add0.y", Faulty.stuck_at ~bit:0 ~value:true);
      ("r_x.q", Faulty.stuck_at ~bit:3 ~value:false);
    ]

let test_injection_unknown_port_rejected () =
  let case = vecadd_case () in
  let prog = Lang.Parser.parse_string case.Testinfra.Suite.source in
  let compiled = Compile.compile prog in
  let lookup, _ = Verify.memory_env prog ~inits:case.Testinfra.Suite.inits in
  let raised =
    try
      ignore
        (Simulate.run_compiled
           ~injections:
             [
               {
                 Simulate.inj_cfg = None;
                 inj_port = "nonesuch.y";
                 inj_transform = Fun.id;
               };
             ]
           ~memories:lookup compiled);
      false
    with Invalid_argument _ -> true
  in
  check_bool "unknown port rejected" true raised

(* --- campaigns ---------------------------------------------------------- *)

let test_campaign_deterministic () =
  let case = vecadd_case () in
  let snapshot (c : Faultcamp.t) =
    List.map
      (fun (m : Faultcamp.mutant) ->
        (Fault.describe m.Faultcamp.fault,
         Faultcamp.outcome_to_string m.Faultcamp.outcome,
         m.Faultcamp.mutant_cycles))
      c.Faultcamp.mutants
  in
  let c1 = Faultcamp.run ~seed:3 ~faults:8 case in
  let c2 = Faultcamp.run ~seed:3 ~faults:8 case in
  check_bool "same seed, same outcomes" true (snapshot c1 = snapshot c2)

let test_campaign_kills_every_class_by_memory_diff () =
  (* vecadd is straight-line over a counter loop, so corrupted data flows
     to the output memory instead of hanging the control flow: every
     fault class must produce at least one mutant killed by the golden-
     model memory comparison itself (not just the timeout watchdog). *)
  let campaign = Faultcamp.run ~seed:1 ~faults:30 (vecadd_case ()) in
  check_bool "clean run passes" true campaign.Faultcamp.clean_passed;
  List.iter
    (fun cls ->
      let memory_killed =
        List.exists
          (fun (m : Faultcamp.mutant) ->
            Fault.fault_class m.Faultcamp.fault = cls
            &&
            match m.Faultcamp.outcome with
            | Faultcamp.Killed reason ->
                String.length reason >= 6 && String.sub reason 0 6 = "memory"
            | _ -> false)
          campaign.Faultcamp.mutants
      in
      check_bool (cls ^ " killed by memory comparison") true memory_killed)
    Fault.all_classes

let test_campaign_stats_consistent () =
  let campaign = Faultcamp.run ~seed:2 ~faults:12 (vecadd_case ()) in
  let total =
    List.fold_left
      (fun acc (s : Faultcamp.class_stats) -> acc + s.Faultcamp.injected)
      0 campaign.Faultcamp.by_class
  in
  check_int "class stats partition the mutants" total
    (List.length campaign.Faultcamp.mutants);
  List.iter
    (fun (s : Faultcamp.class_stats) ->
      check_int (s.Faultcamp.cls ^ " counts add up") s.Faultcamp.injected
        (s.Faultcamp.killed + s.Faultcamp.survived + s.Faultcamp.timed_out))
    campaign.Faultcamp.by_class;
  let table = Testinfra.Metrics.campaign_table campaign in
  check_bool "table lists every class" true
    (List.for_all
       (fun cls ->
         let n = String.length cls in
         let h = String.length table in
         let rec go i = i + n <= h && (String.sub table i n = cls || go (i + 1)) in
         go 0)
       Fault.all_classes)

let test_memory_corrupt_hook () =
  let m = Memory.create ~name:"m" ~width:8 4 in
  Memory.load m [ 1; 2; 3; 4 ];
  Memory.corrupt m ~addr:2 ~xor:0xFF;
  check_int "cell xor-flipped" (3 lxor 0xFF) (Bitvec.to_int (Memory.read m 2));
  check_int "neighbours untouched" 2 (Bitvec.to_int (Memory.read m 1));
  let raised =
    try Memory.corrupt m ~addr:9 ~xor:1; false with Invalid_argument _ -> true
  in
  check_bool "oob corrupt rejected" true raised

let suite =
  [
    ("stuck-at perturbation", `Quick, test_stuck_at);
    ("bit-flip perturbation", `Quick, test_bit_flip);
    ("bad bit rejected", `Quick, test_bad_bit_rejected);
    ("plan deterministic", `Quick, test_plan_deterministic);
    ("plan covers all classes", `Quick, test_plan_covers_all_classes);
    ("plan faults distinct", `Quick, test_plan_distinct);
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("kernels agree under fault", `Quick, test_kernels_agree_under_fault);
    ("unknown injection port rejected", `Quick, test_injection_unknown_port_rejected);
    ("campaign deterministic", `Quick, test_campaign_deterministic);
    ("every class killed by memory diff", `Quick, test_campaign_kills_every_class_by_memory_diff);
    ("campaign stats consistent", `Quick, test_campaign_stats_consistent);
    ("memory corrupt hook", `Quick, test_memory_corrupt_hook);
  ]
