(* Tests for the compiler: lowering, CFG construction, hardware
   generation, the driver, and partition-flow analysis. *)

module Ast = Lang.Ast
module Parser = Lang.Parser
module Ir = Compiler.Ir
module Cfg = Compiler.Cfg
module Hwgen = Compiler.Hwgen
module Compile = Compiler.Compile
module Dp = Netlist.Datapath
module Fsm = Fsmkit.Fsm

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let parse = Parser.parse_string

(* --- lowering --------------------------------------------------------- *)

let test_lower_hoists_reads () =
  let t = Ir.make_temp_alloc () in
  let stmts =
    Ir.lower_stmt_simple t
      (Ast.Assign ("x", Ast.Binop (Ast.Add, Ast.Mem_read ("m", Ast.Int 0),
                                   Ast.Mem_read ("m", Ast.Int 1))))
  in
  match stmts with
  | [ Ir.Sload (t0, "m", Ast.Int 0); Ir.Sload (t1, "m", Ast.Int 1);
      Ir.Sassign ("x", Ast.Binop (Ast.Add, Ast.Var v0, Ast.Var v1)) ] ->
      check_bool "temps used in order" true (v0 = t0 && v1 = t1);
      check_int "two temps" 2 (List.length (Ir.temps_allocated t))
  | _ -> Alcotest.fail "unexpected lowering"

let test_lower_nested_read_address () =
  let t = Ir.make_temp_alloc () in
  let stmts =
    Ir.lower_stmt_simple t
      (Ast.Assign ("x", Ast.Mem_read ("m", Ast.Mem_read ("m", Ast.Var "i"))))
  in
  match stmts with
  | [ Ir.Sload (_, "m", Ast.Var "i"); Ir.Sload (_, "m", Ast.Var _);
      Ir.Sassign ("x", Ast.Var _) ] -> ()
  | _ -> Alcotest.fail "nested read lowering"

let test_lower_store () =
  let t = Ir.make_temp_alloc () in
  let stmts =
    Ir.lower_stmt_simple t
      (Ast.Mem_write ("m", Ast.Var "i", Ast.Mem_read ("n", Ast.Var "j")))
  in
  match stmts with
  | [ Ir.Sload (_, "n", Ast.Var "j"); Ir.Sstore ("m", Ast.Var "i", Ast.Var _) ] -> ()
  | _ -> Alcotest.fail "store lowering"

(* --- CFG --------------------------------------------------------------- *)

let cfg_of src =
  let prog = parse src in
  Cfg.build prog.Ast.body

let test_cfg_straight_line () =
  let cfg = cfg_of "program t width 8; var a; a = 1; a = 2;" in
  check_int "statements" 2 (Cfg.statement_count cfg);
  check_int "no branches" 0 (Cfg.branch_count cfg);
  (* entry block jumps to halt *)
  match cfg.Cfg.blocks.(cfg.Cfg.entry).Cfg.term with
  | Cfg.Jump j -> (
      match cfg.Cfg.blocks.(j).Cfg.term with
      | Cfg.Halt -> ()
      | _ -> Alcotest.fail "jump should reach halt")
  | _ -> Alcotest.fail "expected jump terminator"

let test_cfg_if () =
  let cfg =
    cfg_of "program t width 8; var a; if (a == 0) { a = 1; } else { a = 2; } a = 3;"
  in
  check_int "one branch" 1 (Cfg.branch_count cfg);
  check_int "three assignments" 3 (Cfg.statement_count cfg)

let test_cfg_while () =
  let cfg = cfg_of "program t width 8; var a; while (a < 5) { a = a + 1; }" in
  check_int "one branch" 1 (Cfg.branch_count cfg);
  (* The condition block must be re-entered from the body. *)
  let cond_id =
    let found = ref (-1) in
    Array.iteri
      (fun i (b : Cfg.block) ->
        match b.Cfg.term with Cfg.Branch _ -> found := i | _ -> ())
      cfg.Cfg.blocks;
    !found
  in
  let body_jumps_back =
    Array.exists
      (fun (b : Cfg.block) ->
        match b.Cfg.term with Cfg.Jump j -> j = cond_id | _ -> false)
      cfg.Cfg.blocks
  in
  check_bool "loop back edge" true body_jumps_back

let test_cfg_rejects_partition () =
  let prog = parse "program t width 8; var a; a = 1; partition; a = 2;" in
  let raised =
    try ignore (Cfg.build prog.Ast.body); false with Invalid_argument _ -> true
  in
  check_bool "partition rejected inside CFG" true raised

(* --- hardware generation ---------------------------------------------- *)

let generate ?(share = false) src =
  let prog = parse src in
  let cfg = Cfg.build prog.Ast.body in
  let memories =
    List.map (fun (m : Ast.mem_decl) -> (m.Ast.mem_name, { Hwgen.size = m.Ast.mem_size }))
      prog.Ast.mems
  in
  let var_inits =
    List.map (fun (v : Ast.var_decl) -> (v.Ast.var_name, v.Ast.var_init)) prog.Ast.vars
  in
  let gen = if share then Hwgen.generate_shared else Hwgen.generate in
  gen ~name:prog.Ast.prog_name ~width:prog.Ast.prog_width ~memories ~var_inits cfg

let test_hwgen_valid_documents () =
  let r = generate "program t width 8; mem m[16]; var a; a = m[0] + 1; m[1] = a;" in
  Alcotest.(check (list string)) "datapath valid" [] (Dp.check r.Hwgen.datapath);
  Alcotest.(check (list string)) "fsm valid" [] (Fsm.check r.Hwgen.fsm)

let test_hwgen_state_per_ir_stmt () =
  (* load + assign + store + halt = 4 states; no branches. *)
  let r = generate "program t width 8; mem m[16]; var a; a = m[0] + 1; m[1] = a;" in
  check_int "states" 4 r.Hwgen.state_count

let test_hwgen_branch_state () =
  let r = generate "program t width 8; var a; if (a == 0) { a = 1; }" in
  (* branch state + assign + halt *)
  check_int "states" 3 r.Hwgen.state_count;
  check_int "one status" 1 (List.length r.Hwgen.datapath.Dp.statuses)

let test_hwgen_const_dedup () =
  let r = generate "program t width 8; var a; var b; a = 5 + 5; b = 5;" in
  let consts =
    List.filter (fun (op : Dp.operator) -> op.Dp.kind = "const")
      r.Hwgen.datapath.Dp.operators
  in
  check_int "single const 5" 1 (List.length consts)

let test_hwgen_addr_width () =
  check_int "4096 words" 12 (Hwgen.addr_width 4096);
  check_int "1 word" 1 (Hwgen.addr_width 1);
  check_int "2 words" 1 (Hwgen.addr_width 2);
  check_int "3 words" 2 (Hwgen.addr_width 3);
  check_int "1024 words" 10 (Hwgen.addr_width 1024)

let test_hwgen_mux_only_when_needed () =
  (* A variable written from one source needs no mux. *)
  let r = generate "program t width 8; var a; a = 1;" in
  check_bool "no mux" true
    (List.for_all (fun (op : Dp.operator) -> op.Dp.kind <> "mux")
       r.Hwgen.datapath.Dp.operators);
  (* Two distinct sources require one. *)
  let r2 = generate "program t width 8; var a; a = 1; a = a + 2;" in
  check_bool "mux present" true
    (List.exists (fun (op : Dp.operator) -> op.Dp.kind = "mux")
       r2.Hwgen.datapath.Dp.operators)

let test_hwgen_unused_memory_not_instantiated () =
  let r = generate "program t width 8; mem m[4]; mem unused[4]; var a; a = m[0];" in
  check_bool "unused memory skipped" true
    (List.for_all (fun (op : Dp.operator) -> op.Dp.id <> "sram_unused")
       r.Hwgen.datapath.Dp.operators)

let test_sharing_reduces_fus () =
  let src =
    "program t width 16; var a; var b; var c; a = a + b; b = b + c; c = c + a; a = a + 1;"
  in
  let plain = generate src in
  let shared = generate ~share:true src in
  check_bool "fewer or equal FUs" true (shared.Hwgen.fu_count <= plain.Hwgen.fu_count);
  let count_kind r kind =
    List.length
      (List.filter (fun (op : Dp.operator) -> op.Dp.kind = kind)
         r.Hwgen.datapath.Dp.operators)
  in
  check_int "one shared adder" 1 (count_kind shared "add");
  check_int "four dedicated adders" 4 (count_kind plain "add");
  Alcotest.(check (list string)) "shared datapath valid" [] (Dp.check shared.Hwgen.datapath)

let random_program_gen =
  QCheck2.Gen.(
    let small = int_range 0 7 in
    let stmt =
      oneofl
        [
          "a = a + 1;";
          "b = a * 2;";
          "m[0] = a;";
          "a = m[1];";
          "if (a > 3) { b = b + 1; } else { b = 0; }";
          "while (a < 5) { a = a + 1; }";
          "a = b - 1;";
          "m[a & 3] = b;";
        ]
    in
    list_size (int_range 1 8) stmt >>= fun stmts ->
    small >|= fun _ ->
    "program rnd width 8; mem m[4]; var a; var b;\n" ^ String.concat "\n" stmts)


(* --- optimizer ---------------------------------------------------------- *)

module Optimize = Compiler.Optimize

let opt_expr src =
  match (parse ("program t width 8; var a; var b; " ^ src)).Ast.body with
  | [ Ast.Assign (_, e) ] -> Optimize.expr ~width:8 e
  | _ -> Alcotest.fail "expected a single assignment"

let test_optimize_folding () =
  check_bool "constants fold" true (opt_expr "a = 2 + 3 * 4;" = Ast.Int 14);
  check_bool "folding wraps at width" true (opt_expr "a = 100 + 100;" = Ast.Int (-56));
  check_bool "division folds" true (opt_expr "a = 7 / 2;" = Ast.Int 3);
  check_bool "unary folds" true (opt_expr "a = ~0;" = Ast.Int (-1))

let test_optimize_identities () =
  check_bool "x + 0" true (opt_expr "a = b + 0;" = Ast.Var "b");
  check_bool "0 + x" true (opt_expr "a = 0 + b;" = Ast.Var "b");
  check_bool "x * 1" true (opt_expr "a = b * 1;" = Ast.Var "b");
  check_bool "x * 0" true (opt_expr "a = b * 0;" = Ast.Int 0);
  check_bool "x ^ 0" true (opt_expr "a = b ^ 0;" = Ast.Var "b");
  check_bool "x & 0" true (opt_expr "a = b & 0;" = Ast.Int 0);
  check_bool "x << 0" true (opt_expr "a = b << 0;" = Ast.Var "b")

let test_optimize_strength_reduction () =
  check_bool "mul by 8 becomes shift" true
    (opt_expr "a = b * 8;" = Ast.Binop (Ast.Shl, Ast.Var "b", Ast.Int 3));
  check_bool "mul by 3 stays" true
    (opt_expr "a = b * 3;" = Ast.Binop (Ast.Mul, Ast.Var "b", Ast.Int 3));
  (* Signed division truncates toward zero; >> floors. Must NOT reduce. *)
  check_bool "div by 4 not reduced" true
    (opt_expr "a = b / 4;" = Ast.Binop (Ast.Div, Ast.Var "b", Ast.Int 4))

let test_optimize_branch_folding () =
  let prog =
    Optimize.program
      (parse
         "program t width 8; var a; if (1 == 1) { a = 1; } else { a = 2; } \
          while (0 == 1) { a = 9; } assert (3 > 2);")
  in
  check_bool "only the live assignment remains" true
    (prog.Ast.body = [ Ast.Assign ("a", Ast.Int 1) ])

let test_optimize_reduces_fus () =
  let src = "program t width 16; var a; var b; a = b * 16 + (2 + 6); b = a * 1;" in
  let plain = Compile.compile (parse src) in
  let opt =
    Compile.compile ~options:{ Compile.share_operators = false; optimize = true; fold_branches = false }
      (parse src)
  in
  let fus c = (List.hd c.Compile.partitions).Compile.fu_count in
  check_bool "fewer FUs when optimized" true (fus opt < fus plain)

let prop_optimize_preserves_semantics =
  QCheck2.Test.make ~name:"optimizer preserves interpreter results" ~count:60
    random_program_gen
    (fun src ->
      let prog = parse src in
      let run p =
        let stores =
          List.map
            (fun (m : Ast.mem_decl) ->
              ( m.Ast.mem_name,
                Operators.Memory.of_list ~width:p.Ast.prog_width [ 1; 2; 3; 4 ] ))
            p.Ast.mems
        in
        let vars, _ =
          Lang.Interp.run ~memories:(fun n -> List.assoc n stores) p
        in
        (vars, List.map (fun (_, m) -> Operators.Memory.to_list m) stores)
      in
      run prog = run (Optimize.program prog))

(* --- branch folding ------------------------------------------------------ *)

let fold_opts =
  { Compile.share_operators = false; optimize = false; fold_branches = true }

let test_fold_reduces_states () =
  (* if whose condition reads b while the preceding statement writes a:
     the test folds into the assignment's state. *)
  let src =
    "program t width 8; var a; var b; a = 1; if (b == 0) { b = 2; } a = 3;"
  in
  let plain = Compile.compile (parse src) in
  let folded = Compile.compile ~options:fold_opts (parse src) in
  let states c = (List.hd c.Compile.partitions).Compile.state_count in
  check_bool "fewer states when folded" true (states folded < states plain)

let test_fold_unsafe_not_folded () =
  (* The statement before the branch writes the condition's operand:
     folding would read a stale value, so it must not happen. *)
  let src = "program t width 8; var a; a = 1; if (a == 1) { a = 2; }" in
  let plain = Compile.compile (parse src) in
  let folded = Compile.compile ~options:fold_opts (parse src) in
  let states c = (List.hd c.Compile.partitions).Compile.state_count in
  check_int "same states (no fold possible)" (states plain) (states folded)

let test_fold_functionally_equivalent () =
  let img = Workloads.Fdct.make_image ~width_px:8 ~height_px:8 ~seed:77 in
  let outcome =
    Testinfra.Verify.run_source ~options:fold_opts ~inits:[ ("input", img) ]
      (Workloads.Kernels.edge_detect_source ~width_px:8 ~height_px:8
         ~threshold:30)
  in
  check_bool "folded design verifies" true outcome.Testinfra.Verify.passed

let test_fold_saves_cycles () =
  (* A memory store directly precedes the branch test: the store writes no
     scalar, so the test folds into its state — one cycle per iteration. *)
  let src =
    "program t width 16; mem m[16]; var i; var x; var flag;\n\
     flag = 1;\n\
     for (i = 0; i < 16; i = i + 1) {\n\
       m[i] = x;\n\
       if (flag == 1) { x = x + 2; }\n\
     }"
  in
  let cycles options =
    let outcome = Testinfra.Verify.run_source ~options ~inits:[] src in
    check_bool "verifies" true outcome.Testinfra.Verify.passed;
    outcome.Testinfra.Verify.hw_run.Testinfra.Simulate.total_cycles
  in
  let folded = cycles fold_opts and plain = cycles Compile.default_options in
  check_bool "folded runs in fewer cycles" true (folded < plain);
  (* Exactly one cycle saved per loop iteration. *)
  check_int "sixteen cycles saved" 16 (plain - folded)

let prop_fold_matches_golden =
  QCheck2.Test.make ~name:"branch folding preserves semantics" ~count:40
    random_program_gen
    (fun src ->
      (Testinfra.Verify.run_source ~options:fold_opts
         ~inits:[ ("m", [ 1; 2; 3; 4 ]) ] src)
        .Testinfra.Verify.passed)

(* --- driver ------------------------------------------------------------ *)

let test_compile_single_partition () =
  let c = Compile.compile (parse "program t width 8; var a; a = 1;") in
  check_int "one partition" 1 (List.length c.Compile.partitions);
  check_int "one rtg configuration" 1 (Rtg.configuration_count c.Compile.rtg)

let test_compile_two_partitions () =
  let c =
    Compile.compile
      (parse "program t width 8; mem m[4]; var a; a = 1; m[0] = a; partition; m[1] = 2;")
  in
  check_int "two partitions" 2 (List.length c.Compile.partitions);
  Alcotest.(check (list string)) "rtg order" [ "t_p1"; "t_p2" ]
    (Rtg.execution_order c.Compile.rtg);
  Alcotest.(check string) "datapath ref" "t_p1_dp" (Compile.datapath_ref c 0);
  Alcotest.(check string) "fsm ref" "t_p2_fsm" (Compile.fsm_ref c 1)

let test_partition_flow_rejected () =
  let prog =
    parse "program t width 8; mem m[4]; var a; a = 5; m[0] = a; partition; m[1] = a;"
  in
  check_bool "flow violation detected" true (Compile.check_partition_flow prog <> []);
  let raised = try ignore (Compile.compile prog); false with Compile.Error _ -> true in
  check_bool "compile raises" true raised

let test_partition_flow_redefine_ok () =
  (* Partition 2 assigns [a] before reading it, so the flow is legal. *)
  let prog =
    parse
      "program t width 8; mem m[4]; var a; a = 5; m[0] = a; partition; a = 1; m[1] = a;"
  in
  Alcotest.(check (list string)) "no violation" [] (Compile.check_partition_flow prog);
  let c = Compile.compile prog in
  check_int "compiles to two partitions" 2 (List.length c.Compile.partitions)

let test_partition_flow_loop_counter_ok () =
  (* The for-loop init assigns before use — the FDCT2 pattern. *)
  let prog =
    parse
      "program t width 8; mem m[8]; var i; for (i = 0; i < 4; i = i + 1) { m[i] = i; } \
       partition; for (i = 0; i < 4; i = i + 1) { m[i + 4] = i; }"
  in
  Alcotest.(check (list string)) "no violation" [] (Compile.check_partition_flow prog)

let test_partition_flow_branch_defined () =
  (* Defined on only one branch of an if -> still a suspect use after. *)
  let prog =
    parse
      "program t width 8; mem m[4]; var a; var b; a = 1; m[0] = a; b = a; partition; \
       if (m[0] == 1) { a = 1; } else { b = 2; } m[1] = a;"
  in
  check_bool "partial definition flagged" true
    (Compile.check_partition_flow prog <> [])

(* Property: compiled FSMs always have exactly one done state reachable,
   and every datapath/FSM pair passes validation, over random programs. *)
let prop_random_programs_compile =
  QCheck2.Test.make ~name:"random programs compile to valid documents" ~count:60
    random_program_gen
    (fun src ->
      let c = Compile.compile (parse src) in
      List.for_all
        (fun (p : Compile.partition) ->
          Dp.check p.Compile.datapath = [] && Fsm.check p.Compile.fsm = [])
        c.Compile.partitions)

let suite =
  [
    ("lowering hoists reads", `Quick, test_lower_hoists_reads);
    ("lowering nested read", `Quick, test_lower_nested_read_address);
    ("lowering store", `Quick, test_lower_store);
    ("cfg straight line", `Quick, test_cfg_straight_line);
    ("cfg if", `Quick, test_cfg_if);
    ("cfg while", `Quick, test_cfg_while);
    ("cfg rejects partition", `Quick, test_cfg_rejects_partition);
    ("hwgen valid documents", `Quick, test_hwgen_valid_documents);
    ("hwgen one state per IR statement", `Quick, test_hwgen_state_per_ir_stmt);
    ("hwgen branch state", `Quick, test_hwgen_branch_state);
    ("hwgen const dedup", `Quick, test_hwgen_const_dedup);
    ("hwgen addr width", `Quick, test_hwgen_addr_width);
    ("hwgen mux only when needed", `Quick, test_hwgen_mux_only_when_needed);
    ("hwgen skips unused memories", `Quick, test_hwgen_unused_memory_not_instantiated);
    ("sharing reduces FUs", `Quick, test_sharing_reduces_fus);
    ("optimize folding", `Quick, test_optimize_folding);
    ("optimize identities", `Quick, test_optimize_identities);
    ("optimize strength reduction", `Quick, test_optimize_strength_reduction);
    ("optimize branch folding", `Quick, test_optimize_branch_folding);
    ("optimize reduces FUs", `Quick, test_optimize_reduces_fus);
    QCheck_alcotest.to_alcotest prop_optimize_preserves_semantics;
    ("fold reduces states", `Quick, test_fold_reduces_states);
    ("fold unsafe not folded", `Quick, test_fold_unsafe_not_folded);
    ("fold functionally equivalent", `Quick, test_fold_functionally_equivalent);
    ("fold saves cycles", `Quick, test_fold_saves_cycles);
    QCheck_alcotest.to_alcotest prop_fold_matches_golden;
    ("compile single partition", `Quick, test_compile_single_partition);
    ("compile two partitions", `Quick, test_compile_two_partitions);
    ("partition flow rejected", `Quick, test_partition_flow_rejected);
    ("partition flow redefine ok", `Quick, test_partition_flow_redefine_ok);
    ("partition flow loop counter ok", `Quick, test_partition_flow_loop_counter_ok);
    ("partition flow branch defined", `Quick, test_partition_flow_branch_defined);
    QCheck_alcotest.to_alcotest prop_random_programs_compile;
  ]
