(* Tests for the VCD waveform writer. *)

open Sim

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let dump_to_string f =
  let path = Filename.temp_file "wave" ".vcd" in
  f path;
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  s

let test_header_and_vars () =
  let text =
    dump_to_string (fun path ->
        let engine = Engine.create () in
        let a = Engine.signal engine ~name:"bus a" 8 in
        let b = Engine.signal engine ~name:"b" 1 in
        let vcd = Vcd.create_file ~scope:"dut" path engine [ ("bus a", a); ("b", b) ] in
        ignore (Engine.run engine);
        Vcd.close vcd)
  in
  check_bool "timescale" true (contains "$timescale 1ns $end" text);
  check_bool "scope" true (contains "$scope module dut $end" text);
  check_bool "var widths" true (contains "$var wire 8 ! bus_a $end" text);
  check_bool "scalar var" true (contains "$var wire 1 \" b $end" text);
  check_bool "initial dump" true (contains "$dumpvars" text)

let test_changes_recorded () =
  let engine = Engine.create () in
  let a = Engine.signal engine ~name:"a" 8 in
  let text =
    dump_to_string (fun path ->
        let vcd = Vcd.create_file path engine [ ("a", a) ] in
        Engine.drive engine a ~delay:5 (Bitvec.create ~width:8 0xA5);
        Engine.drive engine a ~delay:9 (Bitvec.create ~width:8 0x01);
        ignore (Engine.run engine);
        check_int "two changes" 2 (Vcd.changes_written vcd);
        Vcd.close vcd)
  in
  check_bool "time 5" true (contains "#5" text);
  check_bool "value a5" true (contains "b10100101 !" text);
  check_bool "time 9" true (contains "#9" text)

let test_scalar_format () =
  let engine = Engine.create () in
  let b = Engine.signal engine ~name:"b" 1 in
  let text =
    dump_to_string (fun path ->
        let vcd = Vcd.create_file path engine [ ("b", b) ] in
        Engine.drive engine b ~delay:3 (Bitvec.one 1);
        ignore (Engine.run engine);
        Vcd.close vcd)
  in
  check_bool "scalar change format" true (contains "\n1!" text)

let test_close_idempotent_and_silent () =
  let engine = Engine.create () in
  let a = Engine.signal engine ~name:"a" 4 in
  let text =
    dump_to_string (fun path ->
        let vcd = Vcd.create_file path engine [ ("a", a) ] in
        Vcd.close vcd;
        Vcd.close vcd;
        (* Changes after close must not be written. *)
        Engine.drive engine a ~delay:2 (Bitvec.create ~width:4 7);
        ignore (Engine.run engine))
  in
  check_bool "no post-close changes" false (contains "#2" text)

let test_many_signals_distinct_codes () =
  let engine = Engine.create () in
  let signals =
    List.init 100 (fun i ->
        (Printf.sprintf "s%d" i, Engine.signal engine ~name:(Printf.sprintf "s%d" i) 4))
  in
  let text =
    dump_to_string (fun path ->
        let vcd = Vcd.create_file path engine signals in
        ignore (Engine.run engine);
        Vcd.close vcd)
  in
  (* 100 distinct $var lines. *)
  let count =
    List.length
      (List.filter (fun l -> contains "$var wire" l) (String.split_on_char '\n' text))
  in
  check_int "one var per signal" 100 count

let suite =
  [
    ("header and vars", `Quick, test_header_and_vars);
    ("changes recorded", `Quick, test_changes_recorded);
    ("scalar format", `Quick, test_scalar_format);
    ("close idempotent and silent", `Quick, test_close_idempotent_and_silent);
    ("many signals distinct codes", `Quick, test_many_signals_distinct_codes);
  ]
