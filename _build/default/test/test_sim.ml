(* Tests for the event-driven simulation kernel. *)

open Sim

let bv ~width v = Bitvec.create ~width v

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A 2-input AND gate process with a configurable delay. *)
let and_gate engine ~name ~delay a b y =
  let body () =
    Engine.drive engine y ~delay
      (Bitvec.logand (Engine.value a) (Engine.value b))
  in
  ignore (Engine.process engine ~name ~sensitivity:[ a; b ] body)

let test_quiescent_run () =
  let engine = Engine.create () in
  let reason = Engine.run engine in
  (match reason with
  | Engine.Finished -> ()
  | _ -> Alcotest.fail "empty engine should finish");
  check_int "time stays 0" 0 (Engine.now engine)

let test_drive_applies_next_delta () =
  let engine = Engine.create () in
  let s = Engine.signal engine ~name:"s" 8 in
  Engine.drive engine s (bv ~width:8 42);
  check_int "not yet applied" 0 (Engine.value_int s);
  ignore (Engine.run engine);
  check_int "applied after run" 42 (Engine.value_int s);
  check_int "time did not advance" 0 (Engine.now engine)

let test_delayed_drive () =
  let engine = Engine.create () in
  let s = Engine.signal engine ~name:"s" 8 in
  Engine.drive engine s ~delay:7 (bv ~width:8 5);
  ignore (Engine.run engine);
  check_int "value" 5 (Engine.value_int s);
  check_int "time advanced to delay" 7 (Engine.now engine)

let test_combinational_propagation () =
  let engine = Engine.create () in
  let a = Engine.signal engine ~name:"a" 1 in
  let b = Engine.signal engine ~name:"b" 1 in
  let y = Engine.signal engine ~name:"y" 1 in
  and_gate engine ~name:"and" ~delay:0 a b y;
  Engine.drive engine a (Bitvec.one 1);
  Engine.drive engine b (Bitvec.one 1);
  ignore (Engine.run engine);
  check_int "and output" 1 (Engine.value_int y);
  Engine.drive engine b (Bitvec.zero 1);
  ignore (Engine.run engine);
  check_int "and output drops" 0 (Engine.value_int y)

let test_gate_chain_with_delays () =
  (* a --(and d=2)--> y1 --(and d=3)--> y2 ; total settle 5 ticks. *)
  let engine = Engine.create () in
  let a = Engine.signal engine ~name:"a" 1 in
  let one = Engine.signal engine ~name:"one" ~initial:(Bitvec.one 1) 1 in
  let y1 = Engine.signal engine ~name:"y1" 1 in
  let y2 = Engine.signal engine ~name:"y2" 1 in
  and_gate engine ~name:"g1" ~delay:2 a one y1;
  and_gate engine ~name:"g2" ~delay:3 y1 one y2;
  Engine.drive engine a (Bitvec.one 1);
  ignore (Engine.run engine);
  check_int "final value" 1 (Engine.value_int y2);
  check_int "settle time" 5 (Engine.now engine)

let test_process_initialization_pass () =
  let engine = Engine.create () in
  let runs = ref 0 in
  ignore (Engine.process engine ~name:"init" (fun () -> incr runs));
  ignore (Engine.run engine);
  check_int "ran exactly once" 1 !runs

let test_process_woken_once_per_delta () =
  let engine = Engine.create () in
  let a = Engine.signal engine ~name:"a" 1 in
  let b = Engine.signal engine ~name:"b" 1 in
  let runs = ref 0 in
  ignore
    (Engine.process engine ~name:"p" ~sensitivity:[ a; b ] (fun () -> incr runs));
  ignore (Engine.run engine);
  let before = !runs in
  Engine.drive engine a (Bitvec.one 1);
  Engine.drive engine b (Bitvec.one 1);
  ignore (Engine.run engine);
  check_int "single wake for two changes" (before + 1) !runs

let test_no_wake_on_equal_value () =
  let engine = Engine.create () in
  let a = Engine.signal engine ~name:"a" 8 in
  let runs = ref 0 in
  ignore (Engine.process engine ~name:"p" ~sensitivity:[ a ] (fun () -> incr runs));
  ignore (Engine.run engine);
  let before = !runs in
  Engine.drive engine a (bv ~width:8 0);
  ignore (Engine.run engine);
  check_int "no wake when value unchanged" before !runs

let test_combinational_loop_detected () =
  let engine = Engine.create ~max_deltas:100 () in
  let a = Engine.signal engine ~name:"a" 1 in
  (* An inverter feeding itself oscillates with zero delay. *)
  ignore
    (Engine.process engine ~name:"inv" ~sensitivity:[ a ] (fun () ->
         Engine.drive engine a (Bitvec.lognot (Engine.value a))));
  Engine.drive engine a (Bitvec.one 1);
  Alcotest.check_raises "loop raises"
    (Engine.Combinational_loop
       "no convergence after 100 delta cycles at t=0 (last signals: a)")
    (fun () -> ignore (Engine.run engine))

let test_drive_conflict_strict () =
  let engine = Engine.create ~strict_drivers:true () in
  let a = Engine.signal engine ~name:"a" 4 in
  Engine.drive engine a (bv ~width:4 1);
  let raised =
    try
      Engine.drive engine a (bv ~width:4 2);
      false
    with Engine.Drive_conflict _ -> true
  in
  check_bool "conflict detected" true raised

let test_drive_conflict_lenient_counts () =
  let engine = Engine.create () in
  let a = Engine.signal engine ~name:"a" 4 in
  Engine.drive engine a (bv ~width:4 1);
  Engine.drive engine a (bv ~width:4 2);
  ignore (Engine.run engine);
  check_int "last write wins" 2 (Engine.value_int a);
  check_int "collision counted" 1 (Engine.stats engine).Engine.drive_collisions

let test_width_mismatch_rejected () =
  let engine = Engine.create () in
  let a = Engine.signal engine ~name:"a" 4 in
  let raised =
    try
      Engine.drive engine a (bv ~width:8 1);
      false
    with Invalid_argument _ -> true
  in
  check_bool "width mismatch rejected" true raised

let test_request_stop () =
  let engine = Engine.create () in
  let s = Engine.signal engine ~name:"s" 8 in
  for i = 1 to 10 do
    Engine.drive engine s ~delay:(i * 5) (bv ~width:8 i)
  done;
  ignore
    (Engine.process engine ~name:"watch" ~sensitivity:[ s ] (fun () ->
         if Engine.value_int s = 3 then Engine.request_stop engine "hit 3"));
  let reason = Engine.run engine in
  (match reason with
  | Engine.Stop_requested r -> Alcotest.(check string) "reason" "hit 3" r
  | _ -> Alcotest.fail "expected stop");
  check_int "stopped at t=15" 15 (Engine.now engine);
  (* Resume: the rest of the schedule still plays out. *)
  let reason2 = Engine.run engine in
  (match reason2 with
  | Engine.Finished -> ()
  | _ -> Alcotest.fail "expected finish after resume");
  check_int "final value" 10 (Engine.value_int s)

let test_max_time () =
  let engine = Engine.create () in
  let s = Engine.signal engine ~name:"s" 8 in
  Engine.drive engine s ~delay:100 (bv ~width:8 1);
  let reason = Engine.run ~max_time:50 engine in
  (match reason with
  | Engine.Max_time_reached -> ()
  | _ -> Alcotest.fail "expected max-time stop");
  check_int "event not applied" 0 (Engine.value_int s);
  (* Resuming without the bound completes the event. *)
  ignore (Engine.run engine);
  check_int "event applied on resume" 1 (Engine.value_int s)

let test_clock_edges () =
  let engine = Engine.create () in
  let clock = Clock.create engine ~period:10 () in
  ignore (Engine.run ~max_time:100 engine);
  (* Edges at t=5,15,...,95 -> 10 rising edges in 100 ticks. *)
  check_int "rising edges" 10 (Clock.rising_edges_seen clock)

let test_on_rising_edge_register () =
  let engine = Engine.create () in
  let clock = Clock.create engine ~period:10 () in
  let d = Engine.signal engine ~name:"d" 8 in
  let q = Engine.signal engine ~name:"q" 8 in
  ignore
    (Engine.on_rising_edge engine ~clock:(Clock.signal clock) ~name:"reg"
       (fun () -> Engine.drive engine q (Engine.value d)));
  Engine.drive engine d (bv ~width:8 7);
  ignore (Engine.run ~max_time:4 engine);
  check_int "q before first edge" 0 (Engine.value_int q);
  ignore (Engine.run ~max_time:6 engine);
  check_int "q captured on edge" 7 (Engine.value_int q)

let test_register_no_transparent () =
  (* The register must capture the pre-edge input even when d changes in
     the same time step as the clock edge but a later delta. *)
  let engine = Engine.create () in
  let clock = Clock.create engine ~period:10 () in
  let d = Engine.signal engine ~name:"d" 8 in
  let q = Engine.signal engine ~name:"q" 8 in
  ignore
    (Engine.on_rising_edge engine ~clock:(Clock.signal clock) ~name:"reg"
       (fun () -> Engine.drive engine q (Engine.value d)));
  (* d flips from 0 to 9 exactly at the first rising edge (t=5). *)
  Engine.drive engine d ~delay:5 (bv ~width:8 9);
  ignore (Engine.run ~max_time:6 engine);
  (* Race resolution: the register sees whichever value the delta batch
     applied first; both assignments land in the same batch, so d=9 is
     visible. What matters is determinism, not the winner. *)
  let captured = Engine.value_int q in
  ignore (Engine.run ~max_time:14 engine);
  check_int "second edge captures 9" 9 (Engine.value_int q);
  check_bool "first capture deterministic" true (captured = 9 || captured = 0)

let test_on_change_hook () =
  let engine = Engine.create () in
  let s = Engine.signal engine ~name:"s" 8 in
  let seen = ref [] in
  Engine.on_change engine s (fun () ->
      seen := (Engine.now engine, Engine.value_int s) :: !seen);
  Engine.drive engine s ~delay:3 (bv ~width:8 1);
  Engine.drive engine s ~delay:6 (bv ~width:8 2);
  Engine.drive engine s ~delay:9 (bv ~width:8 2);
  ignore (Engine.run engine);
  Alcotest.(check (list (pair int int)))
    "changes with timestamps" [ (3, 1); (6, 2) ] (List.rev !seen)

let test_stats_accumulate () =
  let engine = Engine.create () in
  let s = Engine.signal engine ~name:"s" 8 in
  for i = 1 to 5 do
    Engine.drive engine s ~delay:i (bv ~width:8 i)
  done;
  ignore (Engine.run engine);
  let st = Engine.stats engine in
  check_int "events" 5 st.Engine.events;
  check_int "time points" 5 st.Engine.time_points

let test_force_no_wake () =
  let engine = Engine.create () in
  let s = Engine.signal engine ~name:"s" 8 in
  let runs = ref 0 in
  ignore (Engine.process engine ~name:"p" ~sensitivity:[ s ] (fun () -> incr runs));
  ignore (Engine.run engine);
  let before = !runs in
  Engine.force engine s (bv ~width:8 99);
  ignore (Engine.run engine);
  check_int "value set" 99 (Engine.value_int s);
  check_int "no wake" before !runs

let test_run_for () =
  let engine = Engine.create () in
  let s = Engine.signal engine ~name:"s" 8 in
  Engine.drive engine s ~delay:30 (bv ~width:8 1);
  ignore (Engine.run_for engine 10);
  check_int "not yet" 0 (Engine.value_int s);
  ignore (Engine.run_for engine 25);
  check_int "applied within second window" 1 (Engine.value_int s)

let test_pp_stop_reason () =
  let render r = Format.asprintf "%a" Engine.pp_stop_reason r in
  check_bool "finished" true (render Engine.Finished <> "");
  Alcotest.(check string) "stop text" "stop requested: done"
    (render (Engine.Stop_requested "done"))

let test_dynamic_sensitivity () =
  let engine = Engine.create () in
  let a = Engine.signal engine ~name:"a" 1 in
  let runs = ref 0 in
  let p = Engine.process engine ~name:"p" (fun () -> incr runs) in
  ignore (Engine.run engine);
  let before = !runs in
  Engine.drive engine a (Bitvec.one 1);
  ignore (Engine.run engine);
  check_int "not sensitive yet" before !runs;
  Engine.add_sensitivity p a;
  Engine.drive engine a (Bitvec.zero 1);
  ignore (Engine.run engine);
  check_int "woken after add_sensitivity" (before + 1) !runs

let test_probe_history () =
  let engine = Engine.create () in
  let s = Engine.signal engine ~name:"s" 8 in
  let probe = Probe.attach engine s in
  Engine.drive engine s ~delay:2 (bv ~width:8 1);
  Engine.drive engine s ~delay:4 (bv ~width:8 2);
  Engine.drive engine s ~delay:6 (bv ~width:8 1);
  ignore (Engine.run engine);
  check_int "changes" 3 (Probe.changes probe);
  let times = List.map (fun s -> s.Probe.time) (Probe.samples probe) in
  Alcotest.(check (list int)) "timestamps" [ 0; 2; 4; 6 ] times;
  check_int "distinct values" 3 (List.length (Probe.values_seen probe));
  check_int "last value" 1 (Bitvec.to_int (Probe.last probe).Probe.value)

let test_probe_limit () =
  let engine = Engine.create () in
  let s = Engine.signal engine ~name:"s" 8 in
  let probe = Probe.attach engine ~limit:3 s in
  for i = 1 to 10 do
    Engine.drive engine s ~delay:i (bv ~width:8 i)
  done;
  ignore (Engine.run engine);
  let values =
    List.map (fun smp -> Bitvec.to_int smp.Probe.value) (Probe.samples probe)
  in
  Alcotest.(check (list int)) "keeps newest 3" [ 8; 9; 10 ] values

let test_reset_pulse () =
  let engine = Engine.create () in
  let reset = Clock.reset_pulse engine ~duration:25 () in
  check_int "asserted at t=0" 1 (Engine.value_int reset);
  ignore (Engine.run ~max_time:20 engine);
  check_int "still asserted" 1 (Engine.value_int reset);
  ignore (Engine.run ~max_time:30 engine);
  check_int "deasserted" 0 (Engine.value_int reset)

(* Property: a chain of n unit-delay buffers settles in exactly n ticks and
   propagates the driven value unchanged. *)
let prop_buffer_chain =
  QCheck2.Test.make ~name:"buffer chain settles in n ticks" ~count:50
    (* v >= 1: driving the initial value 0 would be a no-change event and
       the chain would (correctly) never activate. *)
    QCheck2.Gen.(pair (int_range 1 30) (int_range 1 255))
    (fun (n, v) ->
      let engine = Engine.create () in
      let signals =
        Array.init (n + 1) (fun i ->
            Engine.signal engine ~name:(Printf.sprintf "s%d" i) 8)
      in
      for i = 0 to n - 1 do
        let src = signals.(i) and dst = signals.(i + 1) in
        ignore
          (Engine.process engine
             ~name:(Printf.sprintf "buf%d" i)
             ~sensitivity:[ src ]
             (fun () -> Engine.drive engine dst ~delay:1 (Engine.value src)))
      done;
      Engine.drive engine signals.(0) (bv ~width:8 v);
      ignore (Engine.run engine);
      Engine.value_int signals.(n) = v && Engine.now engine = n)

(* Property: events fire in time order regardless of insertion order. *)
let prop_event_order =
  QCheck2.Test.make ~name:"events apply in time order" ~count:100
    QCheck2.Gen.(list_size (int_range 1 40) (int_range 1 500))
    (fun delays ->
      let engine = Engine.create () in
      let s = Engine.signal engine ~name:"s" 16 in
      let applied = ref [] in
      Engine.on_change engine s (fun () ->
          applied := Engine.now engine :: !applied);
      (* Give every delay a distinct value so every event is a change. *)
      List.iteri
        (fun i d ->
          Engine.drive engine s ~delay:d (bv ~width:16 (i + 1)))
        delays;
      ignore (Engine.run engine);
      let times = List.rev !applied in
      let sorted = List.sort_uniq compare delays in
      (* One change per distinct time (same-time drives collapse to the
         last write, still at most one change). *)
      List.length times <= List.length sorted
      && List.for_all2 ( = ) times
           (List.filteri (fun i _ -> i < List.length times) sorted)
      |> fun ordered -> ordered)

(* Property: heap pops in nondecreasing order with FIFO tie-break. *)
let prop_heap_order =
  QCheck2.Test.make ~name:"event heap is a stable priority queue" ~count:200
    QCheck2.Gen.(list_size (int_range 0 200) (int_range 0 50))
    (fun times ->
      let h = Event_heap.create () in
      List.iteri (fun i t -> Event_heap.push h ~time:t (t, i)) times;
      let rec drain acc =
        match Event_heap.pop h with
        | Some (_, payload) -> drain (payload :: acc)
        | None -> List.rev acc
      in
      let popped = drain [] in
      let expected =
        List.mapi (fun i t -> (t, i)) times
        |> List.stable_sort (fun (t1, _) (t2, _) -> compare t1 t2)
      in
      popped = expected)

(* Property: pop_at removes exactly the cohort scheduled at the earliest
   time, in FIFO order, leaving everything later untouched. List sizes up
   to 300 push the heap through several internal grows. *)
let prop_heap_pop_at =
  QCheck2.Test.make ~name:"pop_at drains exactly the min-time cohort"
    ~count:200
    QCheck2.Gen.(list_size (int_range 1 300) (int_range 0 10))
    (fun times ->
      let h = Event_heap.create () in
      List.iteri (fun i t -> Event_heap.push h ~time:t (t, i)) times;
      match Event_heap.min_time h with
      | None -> false
      | Some t ->
          let cohort = Event_heap.pop_at h t in
          let expected =
            List.mapi (fun i x -> (x, i)) times
            |> List.filter (fun (x, _) -> x = t)
          in
          cohort = expected
          && Event_heap.size h = List.length times - List.length cohort
          && (match Event_heap.min_time h with
             | None -> cohort <> []
             | Some t' -> t' > t))

(* Property: FIFO time ordering survives interleaved pushing and popping
   (the pattern the engine's delta loop actually produces). *)
let prop_heap_interleaved =
  QCheck2.Test.make ~name:"heap order stable under interleaved push/pop"
    ~count:200
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 100) (int_range 0 20))
        (list_size (int_range 1 100) (int_range 0 20)))
    (fun (first, second) ->
      let h = Event_heap.create () in
      List.iteri (fun i t -> Event_heap.push h ~time:t (t, i)) first;
      let popped = ref [] in
      for _ = 1 to List.length first / 2 do
        match Event_heap.pop h with
        | Some (t, _) -> popped := t :: !popped
        | None -> ()
      done;
      (* New events may not be scheduled in the past. *)
      let base = match !popped with [] -> 0 | t :: _ -> t in
      List.iteri
        (fun i t -> Event_heap.push h ~time:(base + t) (base + t, 1000 + i))
        second;
      let rec drain () =
        match Event_heap.pop h with
        | Some (t, _) ->
            popped := t :: !popped;
            drain ()
        | None -> ()
      in
      drain ();
      let times_seen = List.rev !popped in
      let rec nondecreasing = function
        | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
        | _ -> true
      in
      nondecreasing times_seen
      && List.length times_seen = List.length first + List.length second)

let suite =
  let qc = QCheck_alcotest.to_alcotest in
  [
    ("quiescent run", `Quick, test_quiescent_run);
    ("drive applies on next delta", `Quick, test_drive_applies_next_delta);
    ("delayed drive", `Quick, test_delayed_drive);
    ("combinational propagation", `Quick, test_combinational_propagation);
    ("gate chain with delays", `Quick, test_gate_chain_with_delays);
    ("initialization pass", `Quick, test_process_initialization_pass);
    ("woken once per delta", `Quick, test_process_woken_once_per_delta);
    ("no wake on equal value", `Quick, test_no_wake_on_equal_value);
    ("combinational loop detected", `Quick, test_combinational_loop_detected);
    ("strict drive conflict", `Quick, test_drive_conflict_strict);
    ("lenient drive conflict counted", `Quick, test_drive_conflict_lenient_counts);
    ("width mismatch rejected", `Quick, test_width_mismatch_rejected);
    ("request stop and resume", `Quick, test_request_stop);
    ("max time bound", `Quick, test_max_time);
    ("clock edges", `Quick, test_clock_edges);
    ("rising-edge register", `Quick, test_on_rising_edge_register);
    ("register not transparent", `Quick, test_register_no_transparent);
    ("on_change hook", `Quick, test_on_change_hook);
    ("stats accumulate", `Quick, test_stats_accumulate);
    ("force does not wake", `Quick, test_force_no_wake);
    ("run_for", `Quick, test_run_for);
    ("pp_stop_reason", `Quick, test_pp_stop_reason);
    ("dynamic sensitivity", `Quick, test_dynamic_sensitivity);
    ("probe history", `Quick, test_probe_history);
    ("probe limit", `Quick, test_probe_limit);
    ("reset pulse", `Quick, test_reset_pulse);
    qc prop_buffer_chain;
    qc prop_event_order;
    qc prop_heap_order;
    qc prop_heap_pop_at;
    qc prop_heap_interleaved;
  ]
