(* Tests for the processor / fabric co-simulation (the paper's stated
   future work). *)

module Memory = Operators.Memory
module Compile = Compiler.Compile

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let scratch ?(size = 16) () = Memory.create ~name:"scratch" ~width:16 size

let run_cpu ?accelerator ?(memories = []) ?(map = []) program =
  let stores = ("scratch", scratch ()) :: memories in
  let lookup name = List.assoc name stores in
  let memory_map = { Cosim.Cpu.base = 0; memory = "scratch" } :: map in
  ( Cosim.Harness.run ?accelerator ~program:(Array.of_list program) ~memory_map
      ~width:16 ~memories:lookup (),
    stores )

let test_arith_and_halt () =
  let result, _ =
    run_cpu [ Cosim.Cpu.Ldi 40; Cosim.Cpu.Addi 2; Cosim.Cpu.Halt ]
  in
  check_bool "halted" true result.Cosim.Harness.cpu_halted;
  check_bool "no fault" true (result.Cosim.Harness.cpu_fault = None);
  check_int "acc" 42 (Bitvec.to_int result.Cosim.Harness.acc);
  check_int "three instructions" 3 result.Cosim.Harness.instructions

let test_memory_ops () =
  let result, stores =
    run_cpu
      [
        Cosim.Cpu.Ldi 7;
        Cosim.Cpu.St 3;
        Cosim.Cpu.Ldi 5;
        Cosim.Cpu.Add 3;  (* 5 + 7 *)
        Cosim.Cpu.St 4;
        Cosim.Cpu.Sub 3;  (* 12 - 7 *)
        Cosim.Cpu.Halt;
      ]
  in
  check_bool "halted cleanly" true (result.Cosim.Harness.cpu_fault = None);
  let m = List.assoc "scratch" stores in
  check_int "stored 7" 7 (Bitvec.to_int (Memory.read m 3));
  check_int "stored 12" 12 (Bitvec.to_int (Memory.read m 4));
  check_int "acc back to 5" 5 (Bitvec.to_int result.Cosim.Harness.acc)

let test_branching_loop () =
  (* Count down from 5: acc = 5; while (acc != 0) acc -= 1. *)
  let result, _ =
    run_cpu
      [
        Cosim.Cpu.Ldi 5;
        Cosim.Cpu.Beqz 4;
        Cosim.Cpu.Addi (-1);
        Cosim.Cpu.Jmp 1;
        Cosim.Cpu.Halt;
      ]
  in
  check_int "acc zero" 0 (Bitvec.to_int result.Cosim.Harness.acc);
  check_bool "halted" true result.Cosim.Harness.cpu_halted

let test_unmapped_fault () =
  let result, _ = run_cpu [ Cosim.Cpu.Ld 9999; Cosim.Cpu.Halt ] in
  check_bool "faulted" true
    (match result.Cosim.Harness.cpu_fault with
    | Some (Cosim.Cpu.Unmapped_address { address = 9999; _ }) -> true
    | _ -> false)

let test_pc_fault () =
  let result, _ = run_cpu [ Cosim.Cpu.Jmp 99 ] in
  check_bool "pc fault" true
    (match result.Cosim.Harness.cpu_fault with
    | Some (Cosim.Cpu.Pc_out_of_range _) -> true
    | _ -> false)

let test_wait_without_accelerator_times_out () =
  let result, _ = run_cpu ~map:[] [ Cosim.Cpu.Wait; Cosim.Cpu.Halt ] in
  check_bool "not halted" false result.Cosim.Harness.cpu_halted;
  check_bool "timed out" true
    (result.Cosim.Harness.stop = Sim.Engine.Max_time_reached)

(* Full co-simulation: the CPU writes four values into the accelerator's
   input SRAM, starts it, waits, and reads back the sum. *)
let sum4_accelerator () =
  let compiled =
    Compile.compile
      (Lang.Parser.parse_string (Workloads.Kernels.sum_source ~n:4))
  in
  let p = List.hd compiled.Compiler.Compile.partitions in
  (p.Compiler.Compile.datapath, p.Compiler.Compile.fsm)

let test_cosim_accelerator () =
  let input = Memory.create ~name:"input" ~width:32 4 in
  let output = Memory.create ~name:"output" ~width:32 1 in
  let stores = [ ("input", input); ("output", output) ] in
  let lookup name = List.assoc name stores in
  (* Map: input at 0..3, output at 16. *)
  let memory_map =
    [ { Cosim.Cpu.base = 0; memory = "input" };
      { Cosim.Cpu.base = 16; memory = "output" } ]
  in
  let program =
    [|
      (* input[i] = 10 + i, computed by the CPU *)
      Cosim.Cpu.Ldi 10; Cosim.Cpu.St 0;
      Cosim.Cpu.Addi 1; Cosim.Cpu.St 1;
      Cosim.Cpu.Addi 1; Cosim.Cpu.St 2;
      Cosim.Cpu.Addi 1; Cosim.Cpu.St 3;
      Cosim.Cpu.Start;
      Cosim.Cpu.Wait;
      Cosim.Cpu.Ld 16;  (* read the accelerator's sum *)
      Cosim.Cpu.Addi 1000;  (* post-process on the CPU *)
      Cosim.Cpu.Halt;
    |]
  in
  let result =
    Cosim.Harness.run ~accelerator:(sum4_accelerator ()) ~program ~memory_map
      ~width:32 ~memories:lookup ()
  in
  check_bool "cpu halted" true result.Cosim.Harness.cpu_halted;
  check_bool "no fault" true (result.Cosim.Harness.cpu_fault = None);
  check_bool "accelerator started" true result.Cosim.Harness.accelerator_started;
  check_bool "accelerator done" true result.Cosim.Harness.accelerator_done;
  check_int "sum written by fabric" 46 (Bitvec.to_int (Memory.read output 0));
  check_int "cpu post-processing" 1046 (Bitvec.to_int result.Cosim.Harness.acc)

let test_accelerator_holds_until_started () =
  (* Without Start, the fabric must never write its output. *)
  let input = Memory.of_list ~name:"input" ~width:32 [ 1; 2; 3; 4 ] in
  let output = Memory.create ~name:"output" ~width:32 1 in
  let stores = [ ("input", input); ("output", output) ] in
  let lookup name = List.assoc name stores in
  let program = [| Cosim.Cpu.Ldi 1; Cosim.Cpu.Halt |] in
  let result =
    Cosim.Harness.run ~accelerator:(sum4_accelerator ()) ~program
      ~memory_map:[ { Cosim.Cpu.base = 0; memory = "input" } ]
      ~width:32 ~memories:lookup ()
  in
  check_bool "fabric never started" false result.Cosim.Harness.accelerator_started;
  check_bool "fabric not done" false result.Cosim.Harness.accelerator_done;
  check_int "output untouched" 0 (Bitvec.to_int (Memory.read output 0))

let test_cosim_matches_standalone () =
  (* The sum computed under co-simulation equals the standalone flow. *)
  let values = [ 3; 14; 15; 9 ] in
  (* standalone *)
  let prog = Lang.Parser.parse_string (Workloads.Kernels.sum_source ~n:4) in
  let lookup, stores =
    Testinfra.Verify.memory_env prog ~inits:[ ("input", values) ]
  in
  let compiled = Compile.compile prog in
  let _ = Testinfra.Simulate.run_compiled ~memories:lookup compiled in
  let standalone = Memory.read (List.assoc "output" stores) 0 in
  (* co-simulated *)
  let input = Memory.of_list ~name:"input" ~width:32 values in
  let output = Memory.create ~name:"output" ~width:32 1 in
  let lookup2 = function
    | "input" -> input
    | "output" -> output
    | m -> failwith m
  in
  let result =
    Cosim.Harness.run ~accelerator:(sum4_accelerator ())
      ~program:[| Cosim.Cpu.Start; Cosim.Cpu.Wait; Cosim.Cpu.Ld 16; Cosim.Cpu.Halt |]
      ~memory_map:
        [ { Cosim.Cpu.base = 0; memory = "input" };
          { Cosim.Cpu.base = 16; memory = "output" } ]
      ~width:32 ~memories:lookup2 ()
  in
  check_bool "halted" true result.Cosim.Harness.cpu_halted;
  check_int "same sum" (Bitvec.to_int standalone)
    (Bitvec.to_int result.Cosim.Harness.acc)

let suite =
  [
    ("arith and halt", `Quick, test_arith_and_halt);
    ("memory ops", `Quick, test_memory_ops);
    ("branching loop", `Quick, test_branching_loop);
    ("unmapped fault", `Quick, test_unmapped_fault);
    ("pc fault", `Quick, test_pc_fault);
    ("wait without accelerator", `Quick, test_wait_without_accelerator_times_out);
    ("cpu drives accelerator", `Quick, test_cosim_accelerator);
    ("accelerator holds until started", `Quick, test_accelerator_holds_until_started);
    ("cosim matches standalone", `Quick, test_cosim_matches_standalone);
  ]
