(* Tests for the XML subset: tree building, printing, parsing, queries. *)

open Xmlkit

let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let parse = Xml_parser.parse_string

let sample =
  Xml.element "datapath"
    ~attrs:[ ("name", "fdct"); ("width", "16") ]
    ~children:
      [
        Xml.element "operator" ~attrs:[ ("id", "add1"); ("type", "add") ];
        Xml.element "net"
          ~attrs:[ ("from", "add1.y"); ("to", "reg1.d") ];
        Xml.element "note" ~children:[ Xml.text "a < b & c" ];
      ]

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_print_contains () =
  let s = Xml.to_string sample in
  check_bool "operator line" true
    (contains ~needle:"<operator id=\"add1\" type=\"add\"/>" s);
  check_bool "escapes text" true
    (contains ~needle:"a &lt; b &amp; c" s);
  check_bool "closes root" true (contains ~needle:"</datapath>" s)

let test_escape () =
  check_str "all five entities" "&lt;&gt;&amp;&quot;&apos;" (Xml.escape "<>&\"'")

let test_parse_roundtrip () =
  let reparsed = parse (Xml.to_string sample) in
  check_bool "tree equal after round-trip" true (reparsed = sample)

let test_parse_declaration_and_comments () =
  let doc =
    {|<?xml version="1.0"?>
      <!-- top comment -->
      <root a="1">
        <!-- inner comment -->
        <child/>
      </root>|}
  in
  match parse doc with
  | Xml.Element e ->
      check_str "tag" "root" e.Xml.tag;
      check_int "children" 1 (List.length e.Xml.children)
  | Xml.Text _ -> Alcotest.fail "expected element"

let test_parse_entities () =
  match parse "<t v=\"a&amp;b\">x &lt; y &#65;</t>" with
  | Xml.Element e ->
      check_str "attr decoded" "a&b" (Xml_query.attr e "v");
      check_str "text decoded" "x < y A" (Xml_query.text_content e)
  | Xml.Text _ -> Alcotest.fail "expected element"

let test_parse_single_quotes () =
  match parse "<t v='hi'/>" with
  | Xml.Element e -> check_str "single-quoted attr" "hi" (Xml_query.attr e "v")
  | Xml.Text _ -> Alcotest.fail "expected element"

let test_parse_errors () =
  let fails doc =
    try ignore (parse doc); false with Xml_parser.Parse_error _ -> true
  in
  check_bool "unclosed tag" true (fails "<a><b></a>");
  check_bool "garbage" true (fails "hello");
  check_bool "trailing content" true (fails "<a/><b/>");
  check_bool "unterminated comment" true (fails "<a><!-- foo</a>");
  check_bool "bad entity" true (fails "<a>&nosuch;</a>");
  check_bool "missing quote" true (fails "<a v=3/>")

let test_parse_error_position () =
  try
    ignore (parse "<a>\n<b></c>\n</a>");
    Alcotest.fail "expected parse error"
  with Xml_parser.Parse_error { line; _ } ->
    check_int "error on line 2" 2 line;
    check_bool "message rendered" true
      (Option.is_some (Xml_parser.error_to_string
           (Xml_parser.Parse_error { line = 2; col = 1; message = "x" })))

let test_query_children () =
  let e = Xml_query.as_element sample in
  check_int "operators" 1 (List.length (Xml_query.children e "operator"));
  check_int "nets" 1 (List.length (Xml_query.children e "net"));
  check_int "absent" 0 (List.length (Xml_query.children e "nothing"))

let test_query_attrs () =
  let e = Xml_query.as_element sample in
  check_str "attr" "fdct" (Xml_query.attr e "name");
  check_int "attr_int" 16 (Xml_query.attr_int e "width");
  check_int "attr_int_default" 7 (Xml_query.attr_int_default e "missing" 7);
  check_bool "attr_opt none" true (Xml_query.attr_opt e "missing" = None);
  let fails f = try ignore (f ()); false with Xml_query.Schema_error _ -> true in
  check_bool "missing attr raises" true (fails (fun () -> Xml_query.attr e "missing"));
  check_bool "non-int raises" true (fails (fun () -> Xml_query.attr_int e "name"))

let test_query_bool () =
  let e = Xml_query.as_element (parse "<t a=\"true\" b=\"0\" c=\"nope\"/>") in
  check_bool "true" true (Xml_query.attr_bool_default e "a" false);
  check_bool "0 is false" false (Xml_query.attr_bool_default e "b" true);
  check_bool "default" true (Xml_query.attr_bool_default e "missing" true);
  let raised =
    try ignore (Xml_query.attr_bool_default e "c" false); false
    with Xml_query.Schema_error _ -> true
  in
  check_bool "bad bool raises" true raised

let test_query_child () =
  let e = Xml_query.as_element sample in
  check_str "child found" "operator" (Xml_query.child e "operator").Xml.tag;
  let fails f = try ignore (f ()); false with Xml_query.Schema_error _ -> true in
  check_bool "missing child raises" true (fails (fun () -> Xml_query.child e "zz"));
  let dup = Xml_query.as_element (parse "<r><x/><x/></r>") in
  check_bool "ambiguous child raises" true (fails (fun () -> Xml_query.child dup "x"))

let test_line_count () =
  (* declaration + 5 body lines (root open, 3 children, root close) *)
  let n = Xml.line_count sample in
  check_int "line count" 6 n

let test_save_and_parse_file () =
  let path = Filename.temp_file "xmlkit" ".xml" in
  Xml.save path sample;
  let reparsed = Xml_parser.parse_file path in
  Sys.remove path;
  check_bool "file round-trip" true (reparsed = sample)

(* Generator for random XML trees made of safe names and text. *)
let gen_tree =
  let open QCheck2.Gen in
  let name = oneofl [ "a"; "b"; "state"; "op"; "net"; "x-y"; "n_1" ] in
  let attrs =
    (* Attribute names must be distinct within an element. *)
    oneofl
      [ []; [ ("k", "v") ]; [ ("a", "1"); ("b", "<&>") ]; [ ("id", "x y'z") ] ]
  in
  sized @@ fix (fun self n ->
      if n = 0 then
        map2 (fun tag attrs -> Xml.element tag ~attrs) name attrs
      else
        map3
          (fun tag attrs children -> Xml.element tag ~attrs ~children)
          name attrs
          (list_size (int_range 0 4) (self (n / 4))))

let prop_print_parse_roundtrip =
  QCheck2.Test.make ~name:"print/parse round-trip" ~count:200 gen_tree
    (fun tree -> parse (Xml.to_string tree) = tree)

let prop_text_roundtrip =
  QCheck2.Test.make ~name:"text content survives escaping" ~count:200
    QCheck2.Gen.(oneofl [ "plain"; "a<b"; "x&y"; "q\"w'e"; "mix <&> all" ])
    (fun txt ->
      let doc = Xml.element "t" ~children:[ Xml.text txt ] in
      match parse (Xml.to_string doc) with
      | Xml.Element e -> Xml_query.text_content e = txt
      | Xml.Text _ -> false)

let suite =
  let qc = QCheck_alcotest.to_alcotest in
  [
    ("print contains expected lines", `Quick, test_print_contains);
    ("escape", `Quick, test_escape);
    ("parse round-trip", `Quick, test_parse_roundtrip);
    ("declaration and comments", `Quick, test_parse_declaration_and_comments);
    ("entities", `Quick, test_parse_entities);
    ("single-quoted attrs", `Quick, test_parse_single_quotes);
    ("parse errors", `Quick, test_parse_errors);
    ("parse error position", `Quick, test_parse_error_position);
    ("query children", `Quick, test_query_children);
    ("query attrs", `Quick, test_query_attrs);
    ("query bools", `Quick, test_query_bool);
    ("query child", `Quick, test_query_child);
    ("line count", `Quick, test_line_count);
    ("file round-trip", `Quick, test_save_and_parse_file);
    qc prop_print_parse_roundtrip;
    qc prop_text_roundtrip;
  ]
