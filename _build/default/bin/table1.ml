(* Regenerates the paper's Table I ("Results using the test
   infrastructure") and, with [--sweep], the Section-3 image-size scaling
   experiment (4,096 / 65,536 / 345,600 pixels).

   Absolute times differ from the paper's Pentium 4 / Hades numbers; the
   claims that must hold are printed and checked at the end: every example
   verifies, simulation is seconds-scale, FDCT2's partitions are each
   smaller than FDCT1, and simulation time grows roughly linearly with
   image size. *)

let hamming_codewords = 2048

let paper_rows =
  (* example, loJava, loXML FSM, loXML datapath, loJava FSM, operators, sim s *)
  [
    ("FDCT1", "138", "512", "1708", "1175", "169", "6.9");
    ("FDCT2", "138", "258+256", "860+891", "667+606", "90+90", "2.9+2.9");
    ("Hamming", "45", "38", "322", "134", "37", "1.5");
  ]

let print_paper_table () =
  print_endline "Paper Table I (DATE'05, Pentium 4 @ 2.8 GHz, Hades/Java):";
  Printf.printf "  %-8s %-8s %-10s %-14s %-10s %-9s %s\n" "Example" "loJava"
    "loXML FSM" "loXML datapath" "loJava FSM" "Operators" "Sim (s)";
  List.iter
    (fun (a, b, c, d, e, f, g) ->
      Printf.printf "  %-8s %-8s %-10s %-14s %-10s %-9s %s\n" a b c d e f g)
    paper_rows;
  print_newline ()

let verify_row ~label ~inits src =
  let outcome = Testinfra.Verify.run_source ~inits src in
  if not outcome.Testinfra.Verify.passed then begin
    Printf.eprintf "FATAL: %s failed functional verification:\n%s" label
      (Testinfra.Report.verification_to_string outcome);
    exit 1
  end;
  let row = Testinfra.Metrics.collect ~source:src outcome in
  { row with Testinfra.Metrics.example = label }

let () =
  let sweep = Array.exists (( = ) "--sweep") Sys.argv in
  let full = Array.exists (( = ) "--full") Sys.argv in
  print_paper_table ();
  let img = Workloads.Fdct.make_image ~width_px:64 ~height_px:64 ~seed:2005 in
  let fdct1 =
    verify_row ~label:"FDCT1" ~inits:[ ("input", img) ]
      (Workloads.Fdct.source ~width_px:64 ~height_px:64 ())
  in
  let fdct2 =
    verify_row ~label:"FDCT2" ~inits:[ ("input", img) ]
      (Workloads.Fdct.source ~partitioned:true ~width_px:64 ~height_px:64 ())
  in
  let hamming =
    verify_row ~label:"Hamming"
      ~inits:[ ("input", Workloads.Hamming.make_codewords ~n:hamming_codewords ~seed:2005) ]
      (Workloads.Hamming.source ~n:hamming_codewords)
  in
  (* Supplementary: operator counts under sharing, for comparison with
     the paper's (presumably shared) binding. *)
  let shared_fus src =
    let c =
      Compiler.Compile.compile
        ~options:
          { Compiler.Compile.share_operators = true; optimize = false;
            fold_branches = false }
        (Lang.Parser.parse_string src)
    in
    List.map
      (fun (p : Compiler.Compile.partition) -> p.Compiler.Compile.fu_count)
      c.Compiler.Compile.partitions
  in
  print_endline
    "Reproduced Table I (this infrastructure: OCaml event-driven simulator,";
  Printf.printf
    "FDCT over a 64x64 image = 4,096 pixels, Hamming over %d codewords):\n"
    hamming_codewords;
  print_string (Testinfra.Metrics.render_table [ fdct1; fdct2; hamming ]);
  print_newline ();
  (* Shape checks corresponding to the paper's observations. *)
  let fdct1_ops = List.hd fdct1.Testinfra.Metrics.operators in
  let partitions_smaller =
    List.for_all (fun ops -> ops < fdct1_ops) fdct2.Testinfra.Metrics.operators
  in
  let total t = List.fold_left ( +. ) 0. t.Testinfra.Metrics.sim_seconds in
  Printf.printf "shape: FDCT2 partitions each smaller than FDCT1 ... %s\n"
    (if partitions_smaller then "yes" else "NO");
  Printf.printf "shape: Hamming much smaller than the FDCTs ......... %s\n"
    (if List.hd hamming.Testinfra.Metrics.operators * 2
        < List.hd fdct1.Testinfra.Metrics.operators
     then "yes" else "NO");
  Printf.printf "shape: whole suite verifies in feasible time ....... %.1fs total\n"
    (total fdct1 +. total fdct2 +. total hamming);
  let fmt_counts l = String.concat "+" (List.map string_of_int l) in
  Printf.printf
    "note: with operator sharing (--share) the FU counts become FDCT1=%s, FDCT2=%s,\n"
    (fmt_counts (shared_fus (Workloads.Fdct.source ~width_px:64 ~height_px:64 ())))
    (fmt_counts
       (shared_fus (Workloads.Fdct.source ~partitioned:true ~width_px:64 ~height_px:64 ())));
  Printf.printf
    "      Hamming=%s - closer to the paper's 169 / 90+90 / 37, which a sharing\n"
    (fmt_counts (shared_fus (Workloads.Hamming.source ~n:hamming_codewords)));
  print_endline "      binder would produce.";
  if sweep then begin
    print_newline ();
    print_endline
      "Image-size sweep (paper Section 3: 4,096 px in 6.9 s; 65,536 px in ~1 min;";
    print_endline "345,600 px in ~6.5 min on 2005 hardware):";
    let sizes =
      [ (64, 64) ] @ [ (256, 256) ] @ (if full then [ (720, 480) ] else [])
    in
    let results =
      List.map
        (fun (w, h) ->
          let img = Workloads.Fdct.make_image ~width_px:w ~height_px:h ~seed:1 in
          let outcome =
            Testinfra.Verify.run_source ~inits:[ ("input", img) ]
              (Workloads.Fdct.source ~width_px:w ~height_px:h ())
          in
          if not outcome.Testinfra.Verify.passed then begin
            Printf.eprintf "FATAL: FDCT1 %dx%d failed verification\n" w h;
            exit 1
          end;
          let seconds =
            outcome.Testinfra.Verify.hw_run.Testinfra.Simulate.total_wall_seconds
          in
          Printf.printf "  FDCT1 %4dx%-4d = %7d px: %8.2f s (%d cycles)\n" w h
            (w * h) seconds
            outcome.Testinfra.Verify.hw_run.Testinfra.Simulate.total_cycles;
          (w * h, seconds))
        sizes
    in
    (match results with
    | (px0, s0) :: rest when s0 > 0. ->
        List.iter
          (fun (px, s) ->
            Printf.printf
              "  scaling %7d px vs %d px: data x%.1f, time x%.1f (linear ~ x%.1f)\n"
              px px0
              (float_of_int px /. float_of_int px0)
              (s /. s0)
              (float_of_int px /. float_of_int px0))
          rest
    | _ -> ());
    if not full then
      print_endline "  (run with --sweep --full to include the 720x480 = 345,600 px point)"
  end
