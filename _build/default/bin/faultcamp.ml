(* Mutation-campaign driver: inject seeded faults into a compiled
   workload and report which ones the verification flow kills. *)

open Cmdliner

let list_workloads () =
  List.iter
    (fun (c : Testinfra.Suite.case) -> print_endline c.Testinfra.Suite.case_name)
    (Testinfra.Faultcamp.default_workloads ())

let run_campaign workload faults seed factor verbose =
  match Testinfra.Faultcamp.find_workload workload with
  | None ->
      Printf.eprintf
        "error: unknown workload %S (try --list for the catalogue)\n" workload;
      exit 1
  | Some case ->
      let campaign =
        Testinfra.Faultcamp.run ~seed ~faults ~max_cycles_factor:factor case
      in
      Printf.printf "=== mutation campaign: %s (seed=%d) ===\n"
        campaign.Testinfra.Faultcamp.workload
        campaign.Testinfra.Faultcamp.seed;
      Printf.printf "clean run: PASS in %d cycles (hw oob baseline %d)\n"
        campaign.Testinfra.Faultcamp.clean_cycles
        campaign.Testinfra.Faultcamp.clean_oob;
      Printf.printf "faults: %d planned of %d requested\n\n"
        (List.length campaign.Testinfra.Faultcamp.mutants)
        campaign.Testinfra.Faultcamp.requested;
      if verbose then begin
        List.iter
          (fun (m : Testinfra.Faultcamp.mutant) ->
            Printf.printf "%-40s %s (%d cycles)\n"
              (Faults.Fault.describe m.Testinfra.Faultcamp.fault)
              (Testinfra.Faultcamp.outcome_to_string
                 m.Testinfra.Faultcamp.outcome)
              m.Testinfra.Faultcamp.mutant_cycles)
          campaign.Testinfra.Faultcamp.mutants;
        print_newline ()
      end;
      print_string (Testinfra.Metrics.campaign_table campaign);
      let survivors = Testinfra.Faultcamp.survivors campaign in
      if survivors <> [] then begin
        Printf.printf "\nsurviving mutants (%d):\n" (List.length survivors);
        List.iter
          (fun (m : Testinfra.Faultcamp.mutant) ->
            Printf.printf "  %s\n"
              (Faults.Fault.describe m.Testinfra.Faultcamp.fault))
          survivors
      end;
      Printf.printf "\nkill rate: %.1f%%\n"
        (100. *. campaign.Testinfra.Faultcamp.kill_rate)

let run workload faults seed factor verbose list =
  try
    if list then list_workloads ()
    else run_campaign workload faults seed factor verbose
  with
  | Failure msg | Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
  | Lang.Check.Invalid errs | Compiler.Compile.Error errs ->
      List.iter (Printf.eprintf "error: %s\n") errs;
      exit 1

let workload_arg =
  Arg.(value & opt string "gcd8"
       & info [ "w"; "workload" ] ~docv:"NAME"
           ~doc:"Workload to mutate (see --list).")

let faults_arg =
  Arg.(value & opt int 25
       & info [ "n"; "faults" ] ~docv:"N" ~doc:"Number of faults to plan.")

let seed_arg =
  Arg.(value & opt int 1
       & info [ "seed" ] ~docv:"SEED"
           ~doc:"Campaign seed; the same seed reproduces the identical \
                 plan and outcomes.")

let factor_arg =
  Arg.(value & opt int 4
       & info [ "max-cycles-factor" ] ~docv:"K"
           ~doc:"Mutant cycle budget as a multiple of the clean run.")

let verbose_arg =
  Arg.(value & flag
       & info [ "v"; "verbose" ] ~doc:"Print every mutant's outcome.")

let list_arg =
  Arg.(value & flag & info [ "list" ] ~doc:"List known workloads and exit.")

let cmd =
  Cmd.v
    (Cmd.info "faultcamp"
       ~doc:"Run a seeded fault-injection campaign against a workload and \
             report the verifier's kill rate per fault class.")
    Term.(
      const run $ workload_arg $ faults_arg $ seed_arg $ factor_arg
      $ verbose_arg $ list_arg)

let () = exit (Cmd.eval cmd)
