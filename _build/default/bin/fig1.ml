(* Emits the paper's Figure 1 — the diagram of the test infrastructure —
   generated from the live translation registry so it always matches the
   implementation. Writes dot to stdout (pipe through graphviz to render). *)

let () =
  print_string
    (Dotkit.Dot.to_string (Testinfra.Flow.infrastructure_diagram ()))
