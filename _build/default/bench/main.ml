(* Benchmark harness: one Bechamel test per reproduced table / figure,
   plus the ablations DESIGN.md calls out.

   - table1/*        : the three Table I workloads (scaled down so each
                       run fits a benchmarking quantum; bin/table1.exe
                       reports the full-size numbers).
   - scaling/*       : the Section-3 image-size series (E2) —
                       simulation time should grow ~linearly in pixels.
   - fig1/*          : regeneration of the infrastructure diagram (E3).
   - ablation/*      : operator sharing on/off, golden software model vs.
                       RTL simulation, compile front-end cost.

   Each simulation benchmark builds fresh memories per run (simulation
   mutates them) but reuses the compiled design. *)

open Bechamel
open Toolkit

module Verify = Testinfra.Verify
module Simulate = Testinfra.Simulate
module Compile = Compiler.Compile

let compile ?(share = false) ?(optimize = false) src =
  Compile.compile ~options:{ Compile.share_operators = share; optimize; fold_branches = false }
    (Lang.Parser.parse_string src)

(* A runnable simulation of a compiled program: fresh memory environment
   on every invocation. *)
let sim_runner compiled prog inits () =
  let lookup, _ = Verify.memory_env prog ~inits in
  let run = Simulate.run_compiled ~memories:lookup compiled in
  assert run.Simulate.all_completed

let fdct_bench ?share ?optimize ~partitioned ~px () =
  let src = Workloads.Fdct.source ~partitioned ~width_px:px ~height_px:px () in
  let prog = Lang.Parser.parse_string src in
  let compiled = compile ?share ?optimize src in
  let img = Workloads.Fdct.make_image ~width_px:px ~height_px:px ~seed:1 in
  sim_runner compiled prog [ ("input", img) ]

let hamming_bench ~n () =
  let src = Workloads.Hamming.source ~n in
  let prog = Lang.Parser.parse_string src in
  let compiled = compile src in
  let codes = Workloads.Hamming.make_codewords ~n ~seed:1 in
  sim_runner compiled prog [ ("input", codes) ]

let cyclesim_bench ~px () =
  let src = Workloads.Fdct.source ~partitioned:false ~width_px:px ~height_px:px () in
  let prog = Lang.Parser.parse_string src in
  let compiled = compile src in
  let p = List.hd compiled.Compile.partitions in
  let img = Workloads.Fdct.make_image ~width_px:px ~height_px:px ~seed:1 in
  fun () ->
    let lookup, _ = Verify.memory_env prog ~inits:[ ("input", img) ] in
    let cy =
      Cyclesim.create ~memories:lookup p.Compile.datapath p.Compile.fsm
    in
    assert (Cyclesim.run cy = `Done)

let cosim_bench () =
  (* Co-simulation overhead: CPU writes 4 inputs, starts the fabric,
     waits, reads the sum back. *)
  let compiled = compile (Workloads.Kernels.sum_source ~n:4) in
  let p = List.hd compiled.Compile.partitions in
  fun () ->
    let input = Operators.Memory.create ~name:"input" ~width:32 4 in
    let output = Operators.Memory.create ~name:"output" ~width:32 1 in
    let lookup = function
      | "input" -> input
      | "output" -> output
      | m -> failwith m
    in
    let program =
      [|
        Cosim.Cpu.Ldi 10; Cosim.Cpu.St 0; Cosim.Cpu.Addi 1; Cosim.Cpu.St 1;
        Cosim.Cpu.Addi 1; Cosim.Cpu.St 2; Cosim.Cpu.Addi 1; Cosim.Cpu.St 3;
        Cosim.Cpu.Start; Cosim.Cpu.Wait; Cosim.Cpu.Ld 16; Cosim.Cpu.Halt;
      |]
    in
    let r =
      Cosim.Harness.run
        ~accelerator:(p.Compile.datapath, p.Compile.fsm)
        ~program
        ~memory_map:
          [ { Cosim.Cpu.base = 0; memory = "input" };
            { Cosim.Cpu.base = 16; memory = "output" } ]
        ~width:32 ~memories:lookup ()
    in
    assert r.Cosim.Harness.cpu_halted

let golden_bench ~px () =
  let src = Workloads.Fdct.source ~width_px:px ~height_px:px () in
  let prog = Lang.Parser.parse_string src in
  let img = Workloads.Fdct.make_image ~width_px:px ~height_px:px ~seed:1 in
  fun () ->
    let lookup, _ = Verify.memory_env prog ~inits:[ ("input", img) ] in
    ignore (Lang.Interp.run ~memories:lookup prog)

let tests =
  [
    (* --- Table I (E1) ------------------------------------------------ *)
    Test.make ~name:"table1/fdct1-16x16"
      (Staged.stage (fdct_bench ~partitioned:false ~px:16 ()));
    Test.make ~name:"table1/fdct2-16x16"
      (Staged.stage (fdct_bench ~partitioned:true ~px:16 ()));
    Test.make ~name:"table1/hamming-256"
      (Staged.stage (hamming_bench ~n:256 ()));
    (* --- image-size scaling (E2) ------------------------------------- *)
    Test.make ~name:"scaling/fdct1-8x8"
      (Staged.stage (fdct_bench ~partitioned:false ~px:8 ()));
    Test.make ~name:"scaling/fdct1-16x16"
      (Staged.stage (fdct_bench ~partitioned:false ~px:16 ()));
    Test.make ~name:"scaling/fdct1-24x24"
      (Staged.stage (fdct_bench ~partitioned:false ~px:24 ()));
    Test.make ~name:"scaling/fdct1-32x32"
      (Staged.stage (fdct_bench ~partitioned:false ~px:32 ()));
    (* --- infrastructure diagram (E3, Figure 1) ------------------------ *)
    Test.make ~name:"fig1/diagram"
      (Staged.stage (fun () ->
           ignore
             (Dotkit.Dot.to_string (Testinfra.Flow.infrastructure_diagram ()))));
    (* --- ablations ----------------------------------------------------- *)
    Test.make ~name:"ablation/fdct1-16x16-shared-fus"
      (Staged.stage (fdct_bench ~share:true ~partitioned:false ~px:16 ()));
    Test.make ~name:"ablation/fdct1-16x16-optimized"
      (Staged.stage (fdct_bench ~optimize:true ~partitioned:false ~px:16 ()));
    Test.make ~name:"ablation/cyclesim-fdct1-16x16"
      (Staged.stage (cyclesim_bench ~px:16 ()));
    Test.make ~name:"ablation/golden-model-fdct1-16x16"
      (Staged.stage (golden_bench ~px:16 ()));
    Test.make ~name:"ablation/cosim-cpu-plus-sum4"
      (Staged.stage (cosim_bench ()));
    Test.make ~name:"ablation/compile-fdct1"
      (Staged.stage (fun () ->
           ignore (compile (Workloads.Fdct.source ~width_px:16 ~height_px:16 ()))));
    Test.make ~name:"ablation/compile-fdct1-shared"
      (Staged.stage (fun () ->
           ignore
             (compile ~share:true
                (Workloads.Fdct.source ~width_px:16 ~height_px:16 ()))));
  ]

let benchmark () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 2.0) ~stabilize:true
      ~compaction:false ()
  in
  List.map
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
      in
      let stats = Analyze.all ols Instance.monotonic_clock results in
      (Test.name test, stats))
    tests

let () =
  Printf.printf "%-40s %15s\n" "benchmark" "time/run";
  Printf.printf "%s\n" (String.make 56 '-');
  List.iter
    (fun (_group, stats) ->
      Hashtbl.iter
        (fun name ols ->
          let estimate =
            match Analyze.OLS.estimates ols with
            | Some [ e ] -> e
            | Some _ | None -> nan
          in
          let pretty =
            if Float.is_nan estimate then "n/a"
            else if estimate > 1e9 then Printf.sprintf "%8.2f  s" (estimate /. 1e9)
            else if estimate > 1e6 then Printf.sprintf "%8.2f ms" (estimate /. 1e6)
            else if estimate > 1e3 then Printf.sprintf "%8.2f us" (estimate /. 1e3)
            else Printf.sprintf "%8.0f ns" estimate
          in
          Printf.printf "%-40s %15s\n%!" name pretty)
        stats)
    (benchmark ())
