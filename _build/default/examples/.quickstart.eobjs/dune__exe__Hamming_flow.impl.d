examples/hamming_flow.ml: Bitvec Compiler Filename Lang List Printf Sim String Sys Testinfra Transform Workloads
