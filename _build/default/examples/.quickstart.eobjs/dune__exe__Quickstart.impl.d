examples/quickstart.ml: Compiler List Netlist Printf String Testinfra Transform Xmlkit
