examples/fdct_flow.mli:
