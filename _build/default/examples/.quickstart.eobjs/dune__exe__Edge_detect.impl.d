examples/edge_detect.ml: Array Lang List Operators Printf Testinfra Workloads
