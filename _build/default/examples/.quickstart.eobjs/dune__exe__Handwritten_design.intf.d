examples/handwritten_design.mli:
