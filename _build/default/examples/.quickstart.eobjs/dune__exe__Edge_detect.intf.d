examples/edge_detect.mli:
