examples/fdct_flow.ml: Array Compiler Filename Lang List Printf Rtg String Sys Testinfra Workloads
