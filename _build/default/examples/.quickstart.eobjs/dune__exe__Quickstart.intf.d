examples/quickstart.mli:
