examples/cosim_accelerator.mli:
