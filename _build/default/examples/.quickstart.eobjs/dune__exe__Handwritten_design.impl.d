examples/handwritten_design.ml: Bitvec Dotkit Filename Fsmkit Hdl List Netlist Operators Printf Sys Testinfra Transform
