examples/hamming_flow.mli:
