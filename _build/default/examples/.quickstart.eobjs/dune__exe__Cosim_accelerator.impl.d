examples/cosim_accelerator.ml: Array Bitvec Compiler Cosim Format Lang List Operators Option Printf
