(* Processor / fabric co-simulation — the paper's stated future work.

   A small accumulator CPU and a compiler-generated accelerator run in the
   same event-driven engine, sharing SRAMs. The CPU prepares the input
   data at runtime, raises the accelerator's start line, stalls on its
   done flag, and post-processes the result.

     dune exec examples/cosim_accelerator.exe  *)

module Cpu = Cosim.Cpu
module Memory = Operators.Memory

(* The accelerator: an edge-count kernel compiled from the source
   language — counts how many neighbouring pairs differ by >= threshold. *)
let accelerator_source =
  {|
program edge_count width 32;
mem input[32];
mem result[1];
var i;
var a;
var b;
var d;
var count;
count = 0;
for (i = 0; i < 31; i = i + 1) {
  a = input[i];
  b = input[i + 1];
  d = b - a;
  if (d < 0) {
    d = 0 - d;
  }
  if (d >= 8) {
    count = count + 1;
  }
}
result[0] = count;
|}

let () =
  let compiled =
    Compiler.Compile.compile (Lang.Parser.parse_string accelerator_source)
  in
  let p = List.hd compiled.Compiler.Compile.partitions in
  Printf.printf "accelerator: %d operators, %d controller states\n"
    p.Compiler.Compile.fu_count p.Compiler.Compile.state_count;

  let input = Memory.create ~name:"input" ~width:32 32 in
  let result = Memory.create ~name:"result" ~width:32 1 in
  let lookup = function
    | "input" -> input
    | "result" -> result
    | m -> failwith ("no memory " ^ m)
  in

  (* CPU firmware: synthesize a waveform into the shared input SRAM
     (a sawtooth with two big jumps), run the fabric, read the count. *)
  let program =
    Array.concat
      [
        (* input[i] = (i * 3) % 17, with spikes at 10 and 20 *)
        Array.concat
          (List.init 32 (fun i ->
               let v = if i = 10 || i = 20 then 200 else i * 3 mod 17 in
               [| Cpu.Ldi v; Cpu.St i |]));
        [|
          Cpu.Start;
          Cpu.Wait;
          Cpu.Ld 64 (* result[0] mapped at 64 *);
          Cpu.Halt;
        |];
      ]
  in
  let outcome =
    Cosim.Harness.run
      ~accelerator:(p.Compiler.Compile.datapath, p.Compiler.Compile.fsm)
      ~program
      ~memory_map:
        [ { Cpu.base = 0; memory = "input" }; { Cpu.base = 64; memory = "result" } ]
      ~width:32 ~memories:lookup ()
  in
  Printf.printf "CPU: %d instructions, %d total cycles, halted=%b\n"
    outcome.Cosim.Harness.instructions outcome.Cosim.Harness.cycles
    outcome.Cosim.Harness.cpu_halted;
  (match outcome.Cosim.Harness.cpu_fault with
  | Some f -> Format.printf "CPU fault: %a@." Cpu.pp_fault f
  | None -> ());
  Printf.printf "fabric: started=%b done=%b final state=%s\n"
    outcome.Cosim.Harness.accelerator_started
    outcome.Cosim.Harness.accelerator_done
    (Option.value ~default:"-" outcome.Cosim.Harness.accelerator_final_state);
  Printf.printf "edges counted by the fabric, read back by the CPU: %d\n"
    (Bitvec.to_int outcome.Cosim.Harness.acc);

  (* Cross-check against the golden interpreter over the same data. *)
  let golden_input = Memory.copy input in
  let golden_result = Memory.create ~name:"result" ~width:32 1 in
  let golden_lookup = function
    | "input" -> golden_input
    | "result" -> golden_result
    | m -> failwith m
  in
  let _ =
    Lang.Interp.run ~memories:golden_lookup
      (Lang.Parser.parse_string accelerator_source)
  in
  let golden = Bitvec.to_int (Memory.read golden_result 0) in
  Printf.printf "golden model agrees: %b (expected %d)\n"
    (golden = Bitvec.to_int outcome.Cosim.Harness.acc)
    golden;
  exit
    (if outcome.Cosim.Harness.cpu_halted
        && golden = Bitvec.to_int outcome.Cosim.Harness.acc
     then 0
     else 1)
