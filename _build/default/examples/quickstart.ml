(* Quickstart: the whole flow on a ten-line program.

     dune exec examples/quickstart.exe

   1. write an algorithm in the source language;
   2. the compiler maps it onto a datapath + FSM (+ RTG);
   3. the infrastructure simulates the architecture and compares every
      memory against the golden software run. *)

let source =
  {|
program multiply_accumulate width 16;
mem a[8];
mem b[8];
mem result[1];
var i;
var acc;
for (i = 0; i < 8; i = i + 1) {
  acc = acc + a[i] * b[i];
}
result[0] = acc;
|}

let () =
  (* Stimulus: two small vectors. *)
  let a = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let b = [ 8; 7; 6; 5; 4; 3; 2; 1 ] in

  (* One call runs: parse -> compile -> golden run -> simulate -> diff. *)
  let outcome =
    Testinfra.Verify.run_source ~inits:[ ("a", a); ("b", b) ] source
  in
  print_string (Testinfra.Report.verification_to_string outcome);

  (* Everything below pokes at the pieces the one-call API hides. *)
  let compiled = outcome.Testinfra.Verify.compiled in
  let partition = List.hd compiled.Compiler.Compile.partitions in
  Printf.printf "\ndatapath: %d operators, controller: %d states\n"
    partition.Compiler.Compile.fu_count partition.Compiler.Compile.state_count;

  (* The generated architecture as XML — what the compiler emits. *)
  print_endline "\n--- datapath XML (first lines) ---";
  let xml =
    Xmlkit.Xml.to_string
      (Netlist.Datapath.to_xml partition.Compiler.Compile.datapath)
  in
  String.split_on_char '\n' xml
  |> List.filteri (fun i _ -> i < 12)
  |> List.iter print_endline;

  (* The controller, translated to executable OCaml (the paper's
     "to java" rule). *)
  print_endline "\n--- generated controller (first lines) ---";
  Transform.Codegen.fsm partition.Compiler.Compile.fsm
  |> String.split_on_char '\n'
  |> List.filteri (fun i _ -> i < 10)
  |> List.iter print_endline;

  exit (if outcome.Testinfra.Verify.passed then 0 else 1)
