(* The paper's second case study: Hamming(7,4) decoding over a codeword
   stream, driven end-to-end through stimulus files (the paper keeps all
   I/O data in files) and probed during simulation.

     dune exec examples/hamming_flow.exe  *)

module Memfile = Testinfra.Memfile
module Verify = Testinfra.Verify
module Simulate = Testinfra.Simulate

let n = 128

let () =
  (* --- stimulus file --------------------------------------------------- *)
  let codewords = Workloads.Hamming.make_codewords ~n ~seed:7 in
  let stim_path = Filename.temp_file "hamming_stimulus" ".mem" in
  Memfile.write_words stim_path codewords;
  Printf.printf "stimulus: %d codewords (every third corrupted) -> %s\n" n
    stim_path;

  (* --- verify from the file (as the CLI would) ------------------------- *)
  let src = Workloads.Hamming.source ~n in
  let outcome =
    Verify.run_source ~inits:[ ("input", Memfile.load_list stim_path) ] src
  in
  print_string (Testinfra.Report.verification_to_string outcome);

  (* --- probe an internal connection during a re-run -------------------- *)
  (* Attach a simulation probe to the decoder's output-memory din port:
     the paper lists "access to values on certain connections" among the
     requirements testing-by-implementation cannot satisfy. *)
  let prog = Lang.Parser.parse_string src in
  let compiled = outcome.Verify.compiled in
  let p = List.hd compiled.Compiler.Compile.partitions in
  let lookup, _ = Verify.memory_env prog ~inits:[ ("input", codewords) ] in
  let engine = Sim.Engine.create () in
  let clock = Sim.Clock.create engine () in
  let design =
    Transform.Elaborate.datapath ~engine ~clock ~memories:lookup
      p.Compiler.Compile.datapath
  in
  let controller = Transform.Fsm_exec.attach ~design p.Compiler.Compile.fsm in
  Transform.Fsm_exec.on_enter_done controller (fun () ->
      Sim.Engine.request_stop engine "done");
  let probe =
    Sim.Probe.attach engine ~limit:8 (Transform.Elaborate.port_signal design "sram_output.dout")
  in
  ignore (Sim.Engine.run engine);
  Printf.printf "\nlast decoded values on output port (probe, newest last):\n ";
  List.iter
    (fun (s : Sim.Probe.sample) ->
      Printf.printf " %d@t=%d" (Bitvec.to_int s.Sim.Probe.value) s.Sim.Probe.time)
    (Sim.Probe.samples probe);
  print_newline ();

  (* --- decode sanity against the reference ----------------------------- *)
  let expected = Workloads.Hamming.expected_output codewords in
  Printf.printf "first 8 decoded: %s\n"
    (String.concat " "
       (List.map string_of_int (List.filteri (fun i _ -> i < 8) expected)));
  Sys.remove stim_path;
  exit (if outcome.Verify.passed then 0 else 1)
