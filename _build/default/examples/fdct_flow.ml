(* The paper's flagship case study: the 8x8-block fast DCT, compiled both
   as one configuration (FDCT1) and as two temporal partitions sequenced
   by an RTG (FDCT2), with the full artifact set written to disk and a VCD
   waveform of the first simulated cycles.

     dune exec examples/fdct_flow.exe -- [output-dir]  *)

module Verify = Testinfra.Verify
module Simulate = Testinfra.Simulate
module Compile = Compiler.Compile

let width_px = 32
let height_px = 32

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "fdct_out" in
  let img = Workloads.Fdct.make_image ~width_px ~height_px ~seed:99 in

  (* --- FDCT1: one configuration ------------------------------------- *)
  let src1 = Workloads.Fdct.source ~width_px ~height_px () in
  let outcome1 = Verify.run_source ~inits:[ ("input", img) ] src1 in
  Printf.printf "%s\n" (Testinfra.Report.one_line outcome1);

  (* --- FDCT2: two temporal partitions -------------------------------- *)
  let src2 = Workloads.Fdct.source ~partitioned:true ~width_px ~height_px () in
  let outcome2 = Verify.run_source ~inits:[ ("input", img) ] src2 in
  Printf.printf "%s\n" (Testinfra.Report.one_line outcome2);
  List.iter
    (fun (r : Simulate.config_run) ->
      Printf.printf "  partition %-12s %6d cycles  %.3fs\n"
        r.Simulate.cfg_name r.Simulate.cycles r.Simulate.wall_seconds)
    outcome2.Verify.hw_run.Simulate.runs;

  (* The RTG that sequences the two partitions. *)
  let rtg = outcome2.Verify.compiled.Compile.rtg in
  Printf.printf "RTG: %s\n"
    (String.concat " -> " (Rtg.execution_order rtg));

  (* --- artifacts ------------------------------------------------------ *)
  let artifacts = Testinfra.Flow.emit_all ~dir outcome2.Verify.compiled in
  Printf.printf "wrote %d artifacts to %s/ (XML, dot, OCaml, Verilog, VHDL)\n"
    (List.length artifacts) dir;

  (* Memory files for the stimulus and the (simulated) result. *)
  let prog = Lang.Parser.parse_string src2 in
  let lookup, stores = Verify.memory_env prog ~inits:[ ("input", img) ] in
  let _ = Simulate.run_compiled ~memories:lookup outcome2.Verify.compiled in
  List.iter
    (fun (name, store) ->
      Testinfra.Memfile.save store (Filename.concat dir (name ^ ".mem")))
    stores;
  Printf.printf "wrote memory files: %s\n"
    (String.concat ", " (List.map (fun (n, _) -> n ^ ".mem") stores));

  (* --- waveform of the first 200 cycles of partition 1 ---------------- *)
  let p1 = List.hd outcome2.Verify.compiled.Compile.partitions in
  let lookup2, _ = Verify.memory_env prog ~inits:[ ("input", img) ] in
  let vcd_path = Filename.concat dir "fdct2_p1.vcd" in
  let _ =
    Simulate.run_configuration ~max_cycles:200 ~vcd_path ~memories:lookup2
      p1.Compile.datapath p1.Compile.fsm
  in
  Printf.printf "wrote %s (first 200 cycles of partition 1)\n" vcd_path;

  exit
    (if outcome1.Verify.passed && outcome2.Verify.passed then 0 else 1)
