(* Image-processing scenario: a horizontal-gradient edge detector over a
   synthetic image, with the input and the simulated hardware's output
   rendered as ASCII art — the paper notes the infrastructure can
   "graphically show input/output data when dealing with image processing
   algorithms".

     dune exec examples/edge_detect.exe  *)

let width_px = 48
let height_px = 16
let threshold = 60

(* A deterministic test card: two filled rectangles and a gradient ramp,
   so the edge detector has something crisp to find. *)
let test_card () =
  List.init (width_px * height_px) (fun i ->
      let x = i mod width_px and y = i / width_px in
      if x >= 6 && x < 16 && y >= 3 && y < 12 then 220
      else if x >= 24 && x < 40 && y >= 6 && y < 14 then 140
      else (x * 3) mod 50)

let render label pixels =
  Printf.printf "%s:\n" label;
  let shades = [| ' '; '.'; ':'; '+'; '#'; '@' |] in
  List.iteri
    (fun i v ->
      let shade = shades.(min 5 (v * 6 / 256)) in
      print_char shade;
      if (i + 1) mod width_px = 0 then print_newline ())
    pixels;
  print_newline ()

let () =
  let img = test_card () in
  render "input image" img;

  let src =
    Workloads.Kernels.edge_detect_source ~width_px ~height_px ~threshold
  in
  let prog = Lang.Parser.parse_string src in
  let outcome = Testinfra.Verify.run_source ~inits:[ ("input", img) ] src in
  Printf.printf "%s\n\n" (Testinfra.Report.one_line outcome);

  (* Pull the simulated hardware's output memory and render it. *)
  let lookup, stores = Testinfra.Verify.memory_env prog ~inits:[ ("input", img) ] in
  let run =
    Testinfra.Simulate.run_compiled ~memories:lookup outcome.Testinfra.Verify.compiled
  in
  assert run.Testinfra.Simulate.all_completed;
  render "edges found by the simulated hardware"
    (Operators.Memory.to_list (List.assoc "output" stores));

  (* Cross-check against the plain OCaml reference as well. *)
  let reference =
    Workloads.Kernels.edge_detect_reference ~width_px ~height_px ~threshold img
  in
  Printf.printf "hardware output = OCaml reference: %b\n"
    (Operators.Memory.to_list (List.assoc "output" stores) = reference);
  exit (if outcome.Testinfra.Verify.passed then 0 else 1)
